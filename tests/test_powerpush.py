"""PowerPush solver: accuracy contract, blocked batching, resolution.

Three contracts under test:

* **Definition 1, deterministically.**  PowerPush stops at
  ``r_sum <= eps * delta`` with non-negative residues, so its reserve
  underestimates the true vector by at most ``eps * delta`` per node --
  with probability 1, no walks.  Verified against the power-iteration
  ground truth over three graph families x three accuracy settings, and
  at a near-machine-precision accuracy where the estimates must land
  within ``1e-12`` of the exact fixpoint.

* **Blocked == solo, byte for byte.**  ``powerpush_batch`` solves B
  sources as one ``(n, B)`` blocked sweep; every per-source vector must
  be bit-identical to a solo ``powerpush`` call (which runs the same
  kernel at width 1).  This is the serving tier's determinism contract
  extended to the batch path.

* **Solver resolution.**  ``REPRO_SOLVER`` / ``solver=`` resolve through
  one funnel shared by ``msrwr``, ``QueryEngine`` and the serving
  engines; ``"auto"`` means the paper default (ResAcc).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.power import power_iteration
from repro.core import AccuracyParams, msrwr, powerpush, powerpush_batch
from repro.core.powerpush import SOLVER_ENV, get_solver, resolve_solver
from repro.core.resacc import resacc
from repro.errors import ParameterError
from repro.graph import generators
from repro.push.kernels import get_push_cache, release_push_cache

GRAPHS = {
    "ba": lambda: generators.preferential_attachment(300, 3, seed=7),
    "power_law": lambda: generators.directed_power_law(250, 5, seed=11),
    "grid": lambda: generators.grid(12, 12, torus=True),
}

ACCURACIES = {
    "paper": lambda n: AccuracyParams.paper_defaults(n),
    "loose-delta": lambda n: AccuracyParams(eps=0.5, delta=10.0 / n,
                                            p_f=1.0 / n),
    "tight-eps": lambda n: AccuracyParams(eps=0.25, delta=5.0 / n,
                                          p_f=1.0 / n),
}

SOURCES = (0, 17, 99)


def _truth(graph, source, tol=1e-14):
    return power_iteration(graph, source, alpha=0.2, tol=tol,
                           max_iters=100_000).estimates


# ----------------------------------------------------------------------
# Accuracy contract vs. the exact fixpoint
# ----------------------------------------------------------------------
@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("accuracy_name", sorted(ACCURACIES))
def test_definition1_deterministic_vs_exact(graph_name, accuracy_name):
    graph = GRAPHS[graph_name]()
    accuracy = ACCURACIES[accuracy_name](graph.n)
    tol = accuracy.eps * accuracy.delta
    for source in SOURCES:
        result = powerpush(graph, source, accuracy=accuracy)
        truth = _truth(graph, source)
        gap = truth - result.estimates
        # Reserve underestimates: non-negative gap, bounded by r_sum.
        assert float(gap.min()) >= -1e-13
        assert float(np.abs(gap).max()) <= tol + 1e-13, (
            f"{graph_name}/{accuracy_name}: source {source} violates "
            f"the deterministic eps*delta bound"
        )
        assert result.walks_used == 0
        assert result.extras["r_sum"] <= tol


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_near_exact_accuracy_matches_fixpoint_1e12(graph_name):
    """Driving the stopping tolerance to ~1e-13 must land the estimates
    within 1e-12 of the exact fixpoint (the PR-4 gated bound)."""
    graph = GRAPHS[graph_name]()
    accuracy = AccuracyParams(eps=1e-10, delta=1e-3, p_f=1.0 / graph.n)
    for source in SOURCES:
        result = powerpush(graph, source, accuracy=accuracy)
        truth = _truth(graph, source)
        assert float(np.abs(truth - result.estimates).max()) <= 1e-12


def test_powerpush_and_resacc_share_the_contract():
    """Both solvers satisfy Definition 1 for the same inputs, so their
    answers can differ by at most the sum of their error budgets."""
    graph = GRAPHS["ba"]()
    accuracy = ACCURACIES["paper"](graph.n)
    tol = accuracy.eps * accuracy.delta
    for source in SOURCES:
        a = powerpush(graph, source, accuracy=accuracy)
        b = resacc(graph, source, accuracy=accuracy, seed=0)
        truth = _truth(graph, source)
        assert float(np.abs(truth - a.estimates).max()) <= tol + 1e-13
        # ResAcc's bound is probabilistic (eps * pi relative); a generous
        # absolute cap suffices to catch a broken solver.
        assert float(np.abs(a.estimates - b.estimates).max()) <= 0.5


def test_mass_is_conserved():
    """Estimates sum to 1 minus the unsettled residue, never more."""
    graph = GRAPHS["ba"]()
    for accuracy_name in sorted(ACCURACIES):
        accuracy = ACCURACIES[accuracy_name](graph.n)
        result = powerpush(graph, 3, accuracy=accuracy)
        missing = 1.0 - float(result.estimates.sum())
        assert -1e-12 <= missing <= result.extras["r_sum"] + 1e-12


def test_phase_structure_and_extras():
    graph = GRAPHS["power_law"]()
    result = powerpush(graph, 5)
    assert result.algorithm == "powerpush"
    assert set(result.phase_seconds) == {"localpush", "power"}
    for key in ("r_sum", "sweeps", "tol", "switched", "local_rounds"):
        assert key in result.extras
    assert result.extras["sweeps"] >= 0


# ----------------------------------------------------------------------
# Blocked batch == solo loop, byte for byte
# ----------------------------------------------------------------------
@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("accuracy_name", sorted(ACCURACIES))
def test_blocked_batch_bytes_equal_solo(graph_name, accuracy_name):
    graph = GRAPHS[graph_name]()
    accuracy = ACCURACIES[accuracy_name](graph.n)
    sources = [0, 3, 17, 42, 99, 120, 7, 64]
    solo = [powerpush(graph, s, accuracy=accuracy) for s in sources]
    batch = powerpush_batch(graph, sources, accuracy=accuracy)
    assert len(batch) == len(sources)
    for s, want, got in zip(sources, solo, batch):
        assert got.source == s
        assert want.estimates.tobytes() == got.estimates.tobytes(), (
            f"{graph_name}/{accuracy_name}: blocked source {s} diverges "
            f"from the width-1 solve"
        )
        assert want.extras["sweeps"] == got.extras["sweeps"]


def test_block_width_does_not_change_bytes():
    """Sub-batches of different widths produce the same bytes as the
    full batch -- the kernel's accumulation order is width-independent,
    which is what lets sources drop out of the block early."""
    graph = GRAPHS["ba"]()
    sources = list(range(0, 24))
    full = powerpush_batch(graph, sources)
    for width in (1, 3, 7):
        chunks = [sources[i:i + width]
                  for i in range(0, len(sources), width)]
        partial = [r for c in chunks for r in powerpush_batch(graph, c)]
        for want, got in zip(full, partial):
            assert want.estimates.tobytes() == got.estimates.tobytes()


def test_batch_validates_all_sources_up_front():
    graph = GRAPHS["ba"]()
    with pytest.raises(ParameterError):
        powerpush_batch(graph, [0, graph.n + 1, 2])
    with pytest.raises(ParameterError):
        powerpush_batch(graph, [])


# ----------------------------------------------------------------------
# Scratch lifecycle: pooled blocks retire with the snapshot cache
# ----------------------------------------------------------------------
def test_blocked_scratch_retires_on_release():
    graph = GRAPHS["ba"]()
    powerpush_batch(graph, [0, 1, 2, 3])
    cache = get_push_cache(graph)
    assert len(cache._block_pool) > 0       # leased blocks were returned
    assert len(cache._power_ops) == 1       # cached A^T operator
    release_push_cache(graph)
    assert len(cache._block_pool) == 0
    assert len(cache._power_ops) == 0


def test_mutation_mid_batch_sequence_stays_correct():
    """The serving engine retires the snapshot's pooled block scratch
    inside the write gate; a batch after the mutation must match fresh
    solo solves on the mutated graph bit for bit."""
    from repro.service import QueryEngine
    from repro.serving import ConcurrentQueryEngine

    graph = GRAPHS["ba"]()
    sources = [2, 9, 33, 150]
    with ConcurrentQueryEngine(graph, solver="powerpush",
                               max_workers=3) as engine:
        engine.query_batch(sources)
        assert engine.add_edge(0, 299)
        after = engine.query_batch(sources)
        reference = QueryEngine(engine.graph, solver="powerpush",
                                cache_size=0)
        for s, got in zip(sources, after):
            want = reference.query(s)
            assert want.estimates.tobytes() == got.estimates.tobytes()


# ----------------------------------------------------------------------
# Solver resolution and the MSRWR fast path
# ----------------------------------------------------------------------
def test_resolve_solver_funnel(monkeypatch):
    monkeypatch.delenv(SOLVER_ENV, raising=False)
    assert resolve_solver(None) == "resacc"
    assert resolve_solver("auto") == "resacc"
    assert resolve_solver("resacc") == "resacc"
    assert resolve_solver(" PowerPush ") == "powerpush"
    monkeypatch.setenv(SOLVER_ENV, "powerpush")
    assert resolve_solver(None) == "powerpush"
    assert resolve_solver("resacc") == "resacc"  # explicit beats env
    with pytest.raises(ParameterError):
        resolve_solver("eigensolve")
    monkeypatch.setenv(SOLVER_ENV, "bogus")
    with pytest.raises(ParameterError):
        resolve_solver(None)


def test_get_solver_returns_callables():
    assert get_solver("powerpush") is powerpush
    assert get_solver("resacc") is not powerpush


def test_msrwr_powerpush_uses_blocked_batch():
    graph = GRAPHS["ba"]()
    sources = [0, 17, 99, 42]
    result = msrwr(graph, sources, solver="powerpush")
    batch = powerpush_batch(graph, sources)
    for i, want in enumerate(batch):
        assert result.matrix[i].tobytes() == want.estimates.tobytes()
        assert result.for_source(sources[i]).tobytes() == \
            want.estimates.tobytes()
    with pytest.raises(ParameterError):
        result.for_source(5)


def test_msrwr_env_resolution(monkeypatch):
    graph = GRAPHS["grid"]()
    sources = [0, 5]
    monkeypatch.setenv(SOLVER_ENV, "powerpush")
    via_env = msrwr(graph, sources)
    explicit = msrwr(graph, sources, solver="powerpush")
    assert via_env.matrix.tobytes() == explicit.matrix.tobytes()


def test_query_engine_solver_names(monkeypatch):
    from repro.service import QueryEngine

    graph = GRAPHS["ba"]()
    direct = QueryEngine(graph, solver="powerpush").query(3)
    assert direct.algorithm == "powerpush"
    monkeypatch.setenv(SOLVER_ENV, "powerpush")
    via_env = QueryEngine(graph).query(3)
    assert via_env.estimates.tobytes() == direct.estimates.tobytes()
    monkeypatch.delenv(SOLVER_ENV)
    default = QueryEngine(graph).query(3)
    assert default.algorithm == "resacc"
    with pytest.raises(ParameterError):
        QueryEngine(graph, solver="bogus")
