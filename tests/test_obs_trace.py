"""Observability layer: trace population, zero-cost disabled path,
JSON round-trips, aggregation, and the surfaces traces flow through."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import (
    export_suite_traces,
    run_suite,
    suite_traces,
    traced_solver,
)
from repro.core.hhop import h_hop_forward
from repro.core.resacc import resacc
from repro.errors import TraceError
from repro.obs import (
    NULL_TRACE,
    QueryTrace,
    aggregate_traces,
    load_traces,
    save_traces,
    trace_from_dict,
    trace_to_dict,
)
from repro.push.forward import init_state
from repro.service import QueryEngine

PHASES = ("hhopfwd", "omfwd", "remedy")


@pytest.fixture
def traced_query(web_graph):
    trace = QueryTrace()
    result = resacc(web_graph, 0, seed=7, trace=trace)
    return trace, result


# ----------------------------------------------------------------------
# (a) a full ResAcc query populates timings and counters
# ----------------------------------------------------------------------

def test_full_query_populates_phases_and_counters(traced_query):
    trace, result = traced_query
    assert [p.name for p in trace.phases] == list(PHASES)
    for record in trace.phases:
        assert record.seconds >= 0.0
        assert record.residue_before is not None
        assert record.residue_after is not None
    assert trace.total_seconds > 0.0
    hhop = trace.phase("hhopfwd")
    assert hhop.counters["pushes"] >= 1
    assert hhop.counters["hop_nodes"] >= 1
    assert trace.phase("omfwd").counters["pushes"] >= 0
    remedy = trace.phase("remedy")
    assert remedy.counters["walk_budget"] >= 0
    assert remedy.counters["walks"] == result.walks_used
    # residue mass decreases monotonically through the push phases and
    # starts from the unit residue at the source.
    assert trace.phases[0].residue_before == pytest.approx(1.0)
    assert trace.phases[0].residue_after >= trace.phases[1].residue_after
    # counters aggregate: pushes recorded == result's push count
    assert trace.counter_totals["pushes"] == result.pushes
    # metadata captured
    assert trace.meta["algorithm"] == "resacc"
    assert trace.meta["seed"] == 7
    assert trace.meta["source"] == 0
    # result carries the very same trace
    assert result.trace is trace


def test_phase_seconds_and_summary(traced_query):
    trace, _ = traced_query
    seconds = trace.phase_seconds
    assert set(seconds) == set(PHASES)
    assert sum(seconds.values()) == pytest.approx(trace.total_seconds)
    summary = trace.summary()
    assert summary["phase_seconds"] == seconds
    assert summary["counters"] == trace.counter_totals
    assert "pushes" in trace.render()


def test_unbalanced_phase_calls_raise():
    trace = QueryTrace()
    trace.begin_phase("a")
    with pytest.raises(TraceError):
        trace.begin_phase("b")
    trace.end_phase()
    with pytest.raises(TraceError):
        trace.end_phase()
    with pytest.raises(TraceError):
        trace.phase("missing")


def test_counters_outside_phases_land_on_trace():
    trace = QueryTrace()
    trace.add_counters(pushes=3)
    trace.add_counters(pushes=2, walks=1)
    assert trace.counters == {"pushes": 5, "walks": 1}
    assert trace.counter_totals == {"pushes": 5, "walks": 1}


# ----------------------------------------------------------------------
# (b) the disabled path is byte-identical and preserves the invariant
# ----------------------------------------------------------------------

def test_disabled_trace_estimates_byte_identical(web_graph):
    plain = resacc(web_graph, 3, seed=11)
    traced = resacc(web_graph, 3, seed=11, trace=QueryTrace())
    assert np.array_equal(plain.estimates, traced.estimates)
    assert plain.trace is None
    assert traced.trace is not None


def test_null_trace_is_falsy_noop():
    assert not NULL_TRACE
    assert NULL_TRACE.enabled is False
    NULL_TRACE.note(x=1)
    NULL_TRACE.begin_phase("p")
    NULL_TRACE.add_counters(pushes=1)
    NULL_TRACE.end_phase()


def test_push_invariant_holds_with_tracing(ba_graph):
    trace = QueryTrace()
    reserve, residue = init_state(ba_graph, 0)
    trace.begin_phase("hhopfwd", residue)
    h_hop_forward(ba_graph, 0, 0.2, 1e-14, 2, reserve, residue,
                  trace=trace)
    record = trace.end_phase(residue)
    assert float(reserve.sum() + residue.sum()) == pytest.approx(1.0)
    assert record.residue_before == pytest.approx(1.0)
    assert record.residue_after == pytest.approx(float(residue.sum()))


# ----------------------------------------------------------------------
# (c) traces round-trip through repro.obs.export
# ----------------------------------------------------------------------

def test_trace_dict_roundtrip(traced_query):
    trace, _ = traced_query
    data = trace_to_dict(trace)
    rebuilt = trace_from_dict(data)
    assert trace_to_dict(rebuilt) == data
    assert rebuilt.phase_seconds == trace.phase_seconds
    assert rebuilt.counter_totals == trace.counter_totals


def test_trace_file_roundtrip(tmp_path, traced_query):
    trace, _ = traced_query
    path = save_traces([trace, trace], tmp_path / "traces.json",
                       meta={"experiment": "unit"})
    loaded = load_traces(path)
    assert len(loaded) == 2
    assert trace_to_dict(loaded[0]) == trace_to_dict(trace)


def test_load_rejects_foreign_documents(tmp_path):
    path = tmp_path / "other.json"
    path.write_text('{"kind": "something-else"}', encoding="utf-8")
    with pytest.raises(TraceError):
        load_traces(path)


def test_aggregate_traces_percentiles(web_graph):
    traces = [QueryTrace() for _ in range(4)]
    for i, trace in enumerate(traces):
        resacc(web_graph, i, seed=i, trace=trace)
    summary = aggregate_traces(traces)
    assert summary["queries"] == 4
    for phase in PHASES:
        entry = summary["phases"][phase]
        assert entry["count"] == 4
        assert entry["p50_seconds"] <= entry["p95_seconds"]
        assert entry["mean_seconds"] > 0.0
    shares = [summary["phases"][p]["share_pct"] for p in PHASES]
    assert sum(shares) == pytest.approx(100.0)
    assert summary["counters"]["pushes"] > 0
    with pytest.raises(TraceError):
        aggregate_traces([])


# ----------------------------------------------------------------------
# surfaces: service, harness
# ----------------------------------------------------------------------

def test_service_attaches_trace_summaries(ba_graph):
    engine = QueryEngine(ba_graph, cache_size=4, trace=True)
    result = engine.query(0)
    assert result.trace is not None
    assert engine.last_trace is not None
    assert set(engine.last_trace["phase_seconds"]) == set(PHASES)
    # cache hit returns the same traced result without re-running
    again = engine.query(0)
    assert again is result


def test_service_untraced_by_default(ba_graph):
    engine = QueryEngine(ba_graph, cache_size=4)
    assert engine.query(0).trace is None
    assert engine.last_trace is None


def test_harness_collects_and_exports_traces(tmp_path, web_graph):
    solvers = {"resacc": traced_solver(
        lambda graph, source, trace=None: resacc(graph, source, seed=1,
                                                 trace=trace)
    )}
    runs = run_suite(web_graph, [0, 1], solvers)
    assert len(runs["resacc"].traces) == 2
    assert len(suite_traces(runs)) == 2
    path = export_suite_traces(runs, tmp_path / "suite.json",
                               experiment="unit")
    loaded = load_traces(path)
    assert len(loaded) == 2
    import json
    meta = json.loads(path.read_text())["meta"]
    assert meta["experiment"] == "unit"
    assert meta["solvers"]["resacc"]["queries"] == 2
