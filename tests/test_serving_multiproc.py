"""Multi-process serving engine: determinism, dedup, crash recovery.

:class:`repro.serving.MultiProcessQueryEngine` moves solves into worker
processes mapping a shared-memory graph snapshot; everything the
threaded engine guarantees must survive the process boundary:

* estimate vectors byte-identical to a sequential single-process loop
  for fixed seeds, over several graph shapes;
* cross-process single-flight -- one solver invocation per unique
  ``(source, accuracy)`` key no matter how many duplicates a batch
  carries;
* mutation broadcast -- after ``add_edge`` no worker ever answers from
  the pre-mutation snapshot (the pool is retired inside the write gate);
* crash containment -- ``SIGKILL`` of a worker respawns the pool and
  the query completes (or fails loudly with ``WorkerCrashError`` when
  retries are exhausted); queries never hang on a dead process.

The suite keeps pools small (``solver_workers=2``) and graphs tiny: the
point is behaviour, not throughput -- the >= 2x cache-cold speedup gate
runs in CI on a multi-core runner (the ``multiproc`` job).
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.core import AccuracyParams
from repro.errors import DeadlineExceededError, WorkerCrashError
from repro.graph import generators
from repro.service import QueryEngine
from repro.serving import MultiProcessQueryEngine

# Three graph shapes with different degree structure (mirrors the
# threaded equivalence suite, smaller because every engine here pays
# process spawn).
GRAPHS = {
    "ba": lambda: generators.preferential_attachment(200, 3, seed=7),
    "power_law": lambda: generators.directed_power_law(150, 5, seed=11),
    "grid": lambda: generators.grid(10, 10, torus=True),
}


def make_engine(graph, **kwargs):
    kwargs.setdefault("solver_workers", 2)
    return MultiProcessQueryEngine(graph, **kwargs)


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_batch_byte_identical_to_sequential(graph_name):
    graph = GRAPHS[graph_name]()
    sources = [0, 3, 17, 42, 3, 0, 99, 17]  # duplicates on purpose
    sequential = QueryEngine(graph, cache_size=0, seed=9)
    expected = [sequential.query(s) for s in sources]
    with make_engine(graph, seed=9) as engine:
        batched = engine.query_batch(sources)
    assert len(batched) == len(sources)
    for source, want, got in zip(sources, expected, batched):
        assert got.source == source
        assert want.estimates.tobytes() == got.estimates.tobytes(), (
            f"{graph_name}: multi-process estimates for source {source} "
            f"diverge from the sequential loop"
        )


def test_single_flight_dedup_across_processes():
    """A batch full of duplicates runs one solve per unique key."""
    graph = GRAPHS["ba"]()
    unique = [1, 5, 9]
    sources = unique * 4
    with make_engine(graph, seed=0) as engine:
        results = engine.query_batch(sources)
        stats = engine.stats
        assert stats.solver_calls == len(unique)
        assert stats.queries == len(sources)
        # Every duplicate either coalesced onto an in-flight solve or
        # hit the cache behind it; none paid a second solver call.
        assert stats.cache_hits + stats.coalesced == (
            len(sources) - len(unique)
        )
        # Duplicate positions share the owner's result object.
        assert results[0] is results[len(unique)]


def test_accuracy_is_part_of_the_flight_key():
    """Same source at different accuracy must not share a result."""
    graph = GRAPHS["grid"]()
    tight = AccuracyParams(eps=0.25, delta=5.0 / graph.n, p_f=1.0 / graph.n)
    with make_engine(graph, seed=3) as engine:
        default = engine.query(12)
        tighter = engine.query(12, accuracy=tight)
        assert engine.stats.solver_calls == 2
    sequential = QueryEngine(graph, cache_size=0, seed=3)
    assert (sequential.query(12, accuracy=tight).estimates.tobytes()
            == tighter.estimates.tobytes())
    assert (sequential.query(12).estimates.tobytes()
            == default.estimates.tobytes())


def test_mutation_broadcast_no_stale_snapshot():
    """After add_edge every answer comes from the new snapshot."""
    graph = GRAPHS["power_law"]()
    reference = QueryEngine(graph, cache_size=0, seed=5)
    with make_engine(graph, seed=5) as engine:
        before = engine.query(7)
        assert engine.epoch == 0
        # Grow the graph: the old shared snapshot has the old n, so a
        # worker still mapping it could not even size this answer.
        changed = engine.add_edge(7, graph.n)
        assert changed
        assert engine.epoch == 1
        after = engine.query(7)
    assert reference.query(7).estimates.tobytes() == before.estimates.tobytes()
    reference.add_edge(7, graph.n)
    want = reference.query(7)
    assert want.estimates.size == graph.n + 1
    assert want.estimates.tobytes() == after.estimates.tobytes()


def test_worker_crash_respawns_and_completes():
    """SIGKILL a live worker: the next query respawns and succeeds."""
    graph = GRAPHS["ba"]()
    sequential = QueryEngine(graph, cache_size=0, seed=2)
    with make_engine(graph, seed=2, cache_size=0) as engine:
        engine.warm_up()
        pids = engine.worker_pids()
        assert len(pids) == 2
        os.kill(pids[0], signal.SIGKILL)
        result = engine.query(11)
        assert (result.estimates.tobytes()
                == sequential.query(11).estimates.tobytes())
        assert engine.stats.worker_restarts >= 1
        # The respawned pool is healthy and holds fresh processes.
        assert engine.query(23).source == 23
        assert not set(engine.worker_pids()) & {pids[0]}


def test_worker_crash_fails_loudly_when_retries_exhausted():
    graph = GRAPHS["grid"]()
    with make_engine(graph, seed=1, crash_retries=0,
                     cache_size=0) as engine:
        engine.warm_up()
        for pid in engine.worker_pids():
            os.kill(pid, signal.SIGKILL)
        with pytest.raises(WorkerCrashError):
            engine.query(4)
        # A crash is not a poison pill: the engine recovered a pool and
        # keeps serving.
        assert engine.query(4).source == 4
        assert engine.stats.worker_restarts >= 1


def test_expired_deadline_never_reaches_the_pool():
    graph = GRAPHS["ba"]()
    with make_engine(graph, seed=0, cache_size=0) as engine:
        with pytest.raises(DeadlineExceededError):
            engine.query(3, deadline=time.monotonic() - 0.001)
        assert engine.stats.solver_calls == 0
        assert engine.stats.deadline_exceeded == 1


def test_traces_carry_worker_process_meta():
    graph = GRAPHS["grid"]()
    with make_engine(graph, seed=0, trace=True, cache_size=0) as engine:
        engine.query(2)
        engine.query(57)
        traces = engine.traces
        assert len(traces) == 2
        for trace in traces:
            assert trace.meta["process"].startswith("SpawnProcess")
            assert trace.meta["pid"] != os.getpid()
        summary = engine.worker_trace_summary()
        assert summary
        assert all(name.startswith("SpawnProcess") for name in summary)


def test_close_is_idempotent_and_releases_shared_memory():
    graph = GRAPHS["ba"]()
    engine = make_engine(graph, seed=0)
    engine.query(0)
    assert engine.worker_pids()
    engine.close()
    assert engine.worker_pids() == []
    engine.close()  # second close is a no-op


def test_incremental_retention_and_repair_across_processes():
    """`incremental=True` carries over: a low-impact edit (high-degree
    broadcaster the sources put no mass on) keeps cached answers, a
    high-impact one (degree 1 -> 2 under score mass) evicts and repairs
    them in the background.  The solve-margin tightening is resolved
    dispatcher-side, so the worker protocol is unchanged."""
    from tests.test_serving_dynamic import (
        BROADCASTER,
        CYCLE,
        SOURCES,
        broadcaster_graph,
    )

    graph = broadcaster_graph()
    accuracy = AccuracyParams.paper_defaults(graph.n)
    with make_engine(graph, accuracy=accuracy, seed=0,
                     incremental=True) as engine:
        engine.warm_up()
        engine.query_batch(SOURCES)
        assert engine.add_edge(BROADCASTER, CYCLE[-1])
        last = engine.stats.extras["last_mutation"]
        assert last["incremental"] is True
        assert last["retained"] == len(SOURCES)
        hits = engine.stats.cache_hits
        for source in SOURCES:
            engine.query(source)  # retained entries serve as hits
        assert engine.stats.cache_hits == hits + len(SOURCES)

        assert engine.add_edge(CYCLE[2], BROADCASTER)
        assert engine.stats.extras["last_mutation"]["retained"] == 0
        deadline = time.monotonic() + 30.0
        while engine.stats.entries_repaired < len(SOURCES):
            assert time.monotonic() < deadline, "repairs never landed"
            time.sleep(0.02)
