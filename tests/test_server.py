"""End-to-end tests for the HTTP service (``repro.server``).

Every test boots a real :class:`SSRWRServer` on a loopback ephemeral
port via :func:`start_in_thread` and drives it with the stdlib
:class:`ServerClient` -- the same path production traffic takes.  The
contracts under test:

* HTTP answers are **value-identical** (as float64) to a sequential
  ``QueryEngine.query`` loop after the JSON round-trip;
* failures are structured: 504 on deadline expiry (with the worker
  freed), 503 on queue-full load shedding, 429 on per-client rate
  limits, 503 from ``/readyz`` while a mutation drains;
* graceful drain finishes admitted requests and retires the engine;
* ``/metrics`` renders well-formed Prometheus text;
* a stress mix of shed / timeout / success leaves the engine serving
  correct answers with no leaked workers.
"""

from __future__ import annotations

import re
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.core import AccuracyParams
from repro.graph import generators
from repro.server import ServerClient, ServerConfig, ServerError, start_in_thread
from repro.service import QueryEngine
from repro.serving import ConcurrentQueryEngine

SEED = 9

# Loose accuracy keeps individual queries at a few milliseconds so the
# whole module stays quick; determinism does not depend on it.
def _accuracy(n):
    return AccuracyParams(eps=0.5, delta=10.0 / n, p_f=1.0 / n)


def _graph():
    return generators.preferential_attachment(300, 3, seed=7)


def _engine(graph, **kwargs):
    kwargs.setdefault("accuracy", _accuracy(graph.n))
    kwargs.setdefault("seed", SEED)
    kwargs.setdefault("max_workers", 4)
    return ConcurrentQueryEngine(graph, **kwargs)


@pytest.fixture(scope="module")
def served():
    """One shared (graph, handle, client) for the read-only tests."""
    graph = _graph()
    handle = start_in_thread(_engine(graph), ServerConfig(port=0))
    client = ServerClient(base_url=handle.url, client_id="pytest")
    yield graph, handle, client
    client.close()
    handle.stop()


# ----------------------------------------------------------------------
# Equivalence over the wire
# ----------------------------------------------------------------------
class TestEquivalence:
    def test_query_matches_sequential_float64(self, served):
        graph, _, client = served
        sources = [0, 3, 17, 42, 99]
        sequential = QueryEngine(graph, accuracy=_accuracy(graph.n),
                                 cache_size=0, seed=SEED)
        for source in sources:
            want = sequential.query(source).estimates
            doc = client.query(source)
            got = np.asarray(doc["estimates"], dtype=np.float64)
            assert doc["source"] == source
            assert want.tobytes() == got.tobytes(), (
                f"HTTP estimates for source {source} diverge from the "
                f"sequential loop after the JSON round-trip"
            )

    def test_query_batch_matches_sequential_float64(self, served):
        graph, _, client = served
        sources = [5, 80, 5, 33, 0, 80]   # duplicates on purpose
        sequential = QueryEngine(graph, accuracy=_accuracy(graph.n),
                                 cache_size=0, seed=SEED)
        expected = [sequential.query(s).estimates for s in sources]
        doc = client.query_batch(sources)
        assert doc["errors"] == {}
        assert len(doc["results"]) == len(sources)
        for source, want, item in zip(sources, expected, doc["results"]):
            assert item["source"] == source
            got = np.asarray(item["estimates"], dtype=np.float64)
            assert want.tobytes() == got.tobytes()

    def test_batch_partial_errors_are_structured(self, served):
        graph, _, client = served
        doc = client.query_batch([1, graph.n + 7, 2])
        assert set(doc["errors"]) == {str(graph.n + 7)}
        assert doc["results"][1] is None
        assert doc["results"][0]["source"] == 1
        assert doc["results"][2]["source"] == 2

    def test_top_k_full_mode_matches_result_top_k(self, served):
        graph, _, client = served
        sequential = QueryEngine(graph, accuracy=_accuracy(graph.n),
                                 cache_size=0, seed=SEED)
        nodes, values = sequential.query(17).top_k(5)
        doc = client.top_k(17, 5, mode="full")
        assert doc["nodes"] == [int(v) for v in nodes]
        assert doc["values"] == [float(v) for v in values]
        assert doc["path"] == "full"
        assert doc["separated"] is False

    def test_top_k_reports_answering_path(self, served):
        """Every /top_k response says which solver path answered."""
        graph, _, client = served
        doc = client.top_k(17, 5)
        assert doc["path"] in ("topk", "full")
        assert isinstance(doc["separated"], bool)
        assert doc["k"] == 5
        assert doc["walks_used"] >= 0
        assert doc["pushes"] >= 0
        # k = n: the fast path certifies trivially (bound_gap would be
        # +inf, which JSON cannot carry -- the field must be null).
        doc = client.top_k(5, graph.n)
        assert doc["path"] == "topk"
        assert doc["separated"] is True
        assert doc["bound_gap"] is None

    def test_top_k_invalid_mode_is_400(self, served):
        _, _, client = served
        with pytest.raises(ServerError) as excinfo:
            client.top_k(17, 5, mode="warp")
        assert excinfo.value.status == 400

    def test_top_k_cached_repeat_is_byte_identical(self, served):
        """A repeated (source, k) request hits the answer cache and the
        raw response body is identical down to the last byte."""
        _, handle, client = served
        payload = {"source": 23, "k": 7}
        first = client.request("POST", "/top_k", payload, raw=True)
        hits_before = handle.server.engine.stats.cache_hits
        second = client.request("POST", "/top_k", payload, raw=True)
        assert first == second
        assert handle.server.engine.stats.cache_hits > hits_before

    def test_accuracy_override_over_http(self, served):
        graph, _, client = served
        tight = AccuracyParams(eps=0.25, delta=5.0 / graph.n,
                               p_f=1.0 / graph.n)
        sequential = QueryEngine(graph, cache_size=0, seed=SEED)
        want = sequential.query(12, accuracy=tight).estimates
        doc = client.query(12, accuracy=tight)
        got = np.asarray(doc["estimates"], dtype=np.float64)
        assert want.tobytes() == got.tobytes()

    def test_healthz_and_readyz(self, served):
        _, _, client = served
        assert client.healthz() == {"status": "ok"}
        doc = client.readyz()
        assert doc["ready"] is True
        assert "epoch" in doc


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_expired_deadline_answers_504(self, served):
        _, handle, client = served
        with pytest.raises(ServerError) as excinfo:
            client.query(203, deadline_ms=0)
        assert excinfo.value.status == 504
        assert handle.server.metrics.deadline_exceeded_total >= 1

    def test_worker_freed_after_deadline(self, served):
        """A 504 must not wedge a dispatch slot: next query succeeds."""
        graph, _, client = served
        for _ in range(3):
            with pytest.raises(ServerError) as excinfo:
                client.query(204, deadline_ms=0)
            assert excinfo.value.status == 504
        doc = client.query(204)
        assert doc["source"] == 204
        assert len(doc["estimates"]) == graph.n

    def test_top_k_deadline_expiry_is_504_and_worker_freed(self, served):
        """Deadline expiry mid-separation surfaces as a clean 504 (not a
        half-built answer) and the dispatch slot is released."""
        graph, handle, client = served
        before = handle.server.metrics.deadline_exceeded_total
        for _ in range(3):
            with pytest.raises(ServerError) as excinfo:
                client.top_k(203, 5, deadline_ms=0)
            assert excinfo.value.status == 504
        assert handle.server.metrics.deadline_exceeded_total >= before + 3
        doc = client.top_k(203, 5)
        assert doc["source"] == 203
        assert len(doc["nodes"]) == 5

    def test_non_numeric_deadline_is_400(self, served):
        _, _, client = served
        with pytest.raises(ServerError) as excinfo:
            client.request("POST", "/query?deadline_ms=soon", {"source": 0})
        assert excinfo.value.status == 400


# ----------------------------------------------------------------------
# Admission control and rate limiting
# ----------------------------------------------------------------------
class TestAdmission:
    def test_queue_full_sheds_503_with_retry_after(self):
        """One admitted request blocked on the gate; the next is shed."""
        graph = _graph()
        engine = _engine(graph)
        handle = start_in_thread(engine, ServerConfig(port=0,
                                                      max_inflight=1))
        release = threading.Event()
        results = {}

        def hold_writer():
            # Holding the write gate stalls every reader, pinning the
            # admitted query inside its admission slot.
            with engine._gate.write():
                release.wait(timeout=30.0)

        def blocked_query():
            with ServerClient(base_url=handle.url) as c:
                results["blocked"] = c.query(5)

        writer = threading.Thread(target=hold_writer)
        writer.start()
        while not engine.mutating:
            time.sleep(0.001)
        reader = threading.Thread(target=blocked_query)
        reader.start()
        while handle.server._admission.inflight < 1:
            time.sleep(0.001)
        try:
            with ServerClient(base_url=handle.url) as c:
                with pytest.raises(ServerError) as excinfo:
                    c.query(6)
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after is not None
            assert handle.server.metrics.shed_total >= 1
        finally:
            release.set()
            writer.join(timeout=30.0)
            reader.join(timeout=30.0)
        # The blocked request finished normally once the gate opened.
        assert results["blocked"]["source"] == 5
        handle.stop()

    def test_readyz_flips_while_mutation_drains(self):
        graph = _graph()
        engine = _engine(graph)
        handle = start_in_thread(engine, ServerConfig(port=0))
        release = threading.Event()

        def hold_writer():
            with engine._gate.write():
                release.wait(timeout=30.0)

        writer = threading.Thread(target=hold_writer)
        writer.start()
        while not engine.mutating:
            time.sleep(0.001)
        try:
            with ServerClient(base_url=handle.url) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.readyz()
                assert excinfo.value.status == 503
                assert excinfo.value.payload == {"ready": False,
                                                 "reason": "mutating"}
        finally:
            release.set()
            writer.join(timeout=30.0)
        with ServerClient(base_url=handle.url) as client:
            assert client.readyz()["ready"] is True
        handle.stop()

    def test_rate_limit_answers_429(self):
        graph = _graph()
        handle = start_in_thread(
            _engine(graph),
            ServerConfig(port=0, rate_limit=0.25, rate_burst=2.0),
        )
        try:
            with ServerClient(base_url=handle.url,
                              client_id="greedy") as client:
                client.query(1)
                client.query(2)
                with pytest.raises(ServerError) as excinfo:
                    client.query(3)
                assert excinfo.value.status == 429
                assert float(excinfo.value.retry_after) >= 1
            # A different client has its own bucket.
            with ServerClient(base_url=handle.url,
                              client_id="patient") as client:
                assert client.query(1)["source"] == 1
            assert handle.server.metrics.rate_limited_total >= 1
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# Mutations over HTTP
# ----------------------------------------------------------------------
class TestMutation:
    def test_mutation_bumps_epoch_and_answers_change(self):
        graph = _graph()
        handle = start_in_thread(_engine(graph), ServerConfig(port=0))
        try:
            with ServerClient(base_url=handle.url) as client:
                before = client.query(0)
                assert before["epoch"] == 0
                doc = client.add_edge(0, 299, undirected=True)
                assert doc["op"] == "add_edge"
                assert doc["changed"] is True
                assert doc["epoch"] == 1
                # Non-incremental engine: the mutation cleared the cache.
                assert doc["cache"]["incremental"] is False
                assert doc["cache"]["retained"] == 0
                after = client.query(0)
                assert after["epoch"] == 1
                assert after["estimates"] != before["estimates"]
                # Removing it again restores the original answer bytes.
                assert client.remove_edge(0, 299)["changed"] is True
                assert client.remove_edge(299, 0)["changed"] is True
                restored = client.query(0)
                want = np.asarray(before["estimates"], dtype=np.float64)
                got = np.asarray(restored["estimates"], dtype=np.float64)
                assert want.tobytes() == got.tobytes()
        finally:
            handle.stop()

    def test_mutated_answers_match_fresh_sequential_engine(self):
        graph = _graph()
        handle = start_in_thread(_engine(graph), ServerConfig(port=0))
        try:
            with ServerClient(base_url=handle.url) as client:
                client.add_edge(7, 250, undirected=True)
                doc = client.query(7)
            mutated = handle.server.engine.graph
            sequential = QueryEngine(mutated, accuracy=_accuracy(mutated.n),
                                     cache_size=0, seed=SEED)
            want = sequential.query(7).estimates
            got = np.asarray(doc["estimates"], dtype=np.float64)
            assert want.tobytes() == got.tobytes()
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_finishes_inflight_then_refuses(self):
        graph = _graph()
        engine = _engine(graph)
        handle = start_in_thread(engine, ServerConfig(port=0,
                                                      drain_timeout=10.0))
        release = threading.Event()
        results = {}

        def hold_writer():
            with engine._gate.write():
                release.wait(timeout=30.0)

        def slow_query():
            with ServerClient(base_url=handle.url) as c:
                results["slow"] = c.query(11)

        writer = threading.Thread(target=hold_writer)
        writer.start()
        while not engine.mutating:
            time.sleep(0.001)
        query_thread = threading.Thread(target=slow_query)
        query_thread.start()
        while handle.server._admission.inflight < 1:
            time.sleep(0.001)

        url = handle.url    # the port evaporates once the listener closes
        stopper = threading.Thread(target=handle.stop)
        stopper.start()
        while not handle.server.draining:
            time.sleep(0.001)
        release.set()          # let the admitted request finish
        writer.join(timeout=30.0)
        query_thread.join(timeout=30.0)
        stopper.join(timeout=30.0)
        assert results["slow"]["source"] == 11
        # The listener is gone: a fresh connection is refused.
        with pytest.raises(OSError):
            urllib.request.urlopen(f"{url}/healthz", timeout=2)

    def test_stop_is_idempotent_and_closes_engine(self):
        graph = _graph()
        engine = _engine(graph)
        handle = start_in_thread(engine, ServerConfig(port=0))
        with ServerClient(base_url=handle.url) as client:
            client.query(0)
        handle.stop()
        handle.stop()
        # own_engine=True: the drain retired the engine's worker pool.
        assert engine._executor._shutdown


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?(\d+\.?\d*([eE][+-]?\d+)?|[+-]?Inf|NaN)$"
)


def parse_prometheus(text):
    """Tiny Prometheus text parser: {metric_name: {labels_str: value}}."""
    families = {}
    samples = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            _, kind, name, rest = line.split(" ", 3)
            families.setdefault(name, {})[kind] = rest
            continue
        assert PROM_SAMPLE.match(line), f"malformed sample line: {line!r}"
        name_and_labels, value = line.rsplit(" ", 1)
        samples[name_and_labels] = float(value)
    return families, samples


class TestMetrics:
    def test_metrics_page_is_well_formed(self, served):
        graph, handle, client = served
        client.query(42)
        with pytest.raises(ServerError):
            client.query(42, deadline_ms=0)
        text = client.metrics()
        families, samples = parse_prometheus(text)
        for name in (
            "repro_http_requests_total",
            "repro_http_query_latency_seconds",
            "repro_http_shed_total",
            "repro_http_rate_limited_total",
            "repro_http_deadline_exceeded_total",
            "repro_http_mutations_total",
            "repro_http_inflight",
            "repro_http_ready",
            "repro_graph_epoch",
            "repro_engine_queries_total",
            "repro_engine_coalesced_total",
            "repro_engine_deadline_exceeded_total",
        ):
            assert "TYPE" in families[name], f"missing TYPE for {name}"
            assert "HELP" in families[name], f"missing HELP for {name}"
        assert samples["repro_http_deadline_exceeded_total"] >= 1
        assert samples["repro_http_ready"] == 1
        assert samples["repro_graph_epoch"] == handle.server.engine.epoch
        # Latency summary carries the quantiles the bench gates on.
        assert 'repro_http_query_latency_seconds{quantile="0.5"}' in samples
        assert 'repro_http_query_latency_seconds{quantile="0.95"}' in samples
        assert samples["repro_http_query_latency_seconds_count"] >= 1
        hits = [key for key in samples
                if key.startswith('repro_http_requests_total{')]
        assert any('endpoint="/query"' in key and 'status="200"' in key
                   for key in hits)

    def test_top_k_metrics_count_paths(self, served):
        _, handle, client = served
        doc = client.top_k(31, 3)
        snapshot = handle.server.metrics.snapshot()
        key = ("topk_fast_total" if doc["path"] == "topk"
               else "topk_full_total")
        assert snapshot[key] >= 1
        _, samples = parse_prometheus(client.metrics())
        total = (samples['repro_http_top_k_answers_total{path="topk"}']
                 + samples['repro_http_top_k_answers_total{path="full"}'])
        assert total >= 1
        assert samples["repro_engine_topk_queries_total"] >= 1

    def test_metrics_counts_match_observed_traffic(self, served):
        _, handle, client = served
        before = handle.server.metrics.snapshot()
        client.query(77)
        client.healthz()
        after = handle.server.metrics.snapshot()
        assert (after["requests"]["/query 200"]
                > before["requests"].get("/query 200", 0))
        assert (after["query_latency"]["count"]
                == before["query_latency"]["count"] + 1)


# ----------------------------------------------------------------------
# Stress: shed + timeout + success under concurrency
# ----------------------------------------------------------------------
class TestStress:
    def test_mixed_outcomes_leave_engine_consistent(self):
        graph = _graph()
        engine = _engine(graph, cache_size=32)
        handle = start_in_thread(
            engine, ServerConfig(port=0, max_inflight=2,
                                 dispatch_workers=2),
        )
        sources = list(range(0, 24))
        outcomes = {"ok": 0, 503: 0, 504: 0}
        lock = threading.Lock()

        def worker(worker_id):
            with ServerClient(base_url=handle.url,
                              client_id=f"w{worker_id}") as client:
                for i, source in enumerate(sources):
                    deadline = 0 if (i + worker_id) % 5 == 0 else None
                    try:
                        doc = client.query(source, deadline_ms=deadline)
                        with lock:
                            outcomes["ok"] += 1
                        assert doc["source"] == source
                    except ServerError as exc:
                        assert exc.status in (503, 504), exc
                        with lock:
                            outcomes[exc.status] += 1

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        assert outcomes["ok"] > 0
        assert outcomes[504] > 0        # forced by the zero deadlines

        worker_threads = [t for t in threading.enumerate()
                          if t.name.startswith("ssrwr-worker")]
        assert len(worker_threads) <= engine._max_workers

        # After the storm the engine still answers correct bytes.
        sequential = QueryEngine(graph, accuracy=_accuracy(graph.n),
                                 cache_size=0, seed=SEED)
        engine.flush_cache()
        with ServerClient(base_url=handle.url) as client:
            for source in (0, 7, 23):
                want = sequential.query(source).estimates
                got = np.asarray(client.query(source)["estimates"],
                                 dtype=np.float64)
                assert want.tobytes() == got.tobytes()
        handle.stop()


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCli:
    def test_repro_serve_parser_defaults(self):
        from repro.server.app import build_parser

        args = build_parser().parse_args(["dblp"])
        assert args.dataset == "dblp"
        assert args.port == 8080
        assert args.max_inflight == 64
        assert args.rate_limit is None

    def test_unknown_dataset_exits_2(self, capsys):
        from repro.server.app import main

        assert main(["no-such-dataset"]) == 2
        assert "no-such-dataset" in capsys.readouterr().err

    def test_bench_doc_shape(self):
        """serve-http bench doc carries the gated fields."""
        from repro.bench import HTTP_BENCH_KIND, http_benchmark

        graph = generators.preferential_attachment(120, 3, seed=3)
        doc = http_benchmark(graph, num_unique=3, repeat=2, concurrency=2,
                             accuracy=_accuracy(graph.n), seed=SEED,
                             num_workers=2)
        assert doc["kind"] == HTTP_BENCH_KIND
        assert doc["byte_identical"] is True
        assert doc["failures"] == []
        assert doc["qps"] > 0
        assert set(doc["latency"]) == {"p50_seconds", "p95_seconds",
                                       "mean_seconds"}
        assert doc["workload"]["requests"] == 6
