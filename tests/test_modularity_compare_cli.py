"""Tests for modularity, run comparison, and the new CLI subcommands."""

import numpy as np
import pytest

from repro.bench.compare import compare_documents, compare_files
from repro.bench.export import export_json
from repro.bench.report import Table
from repro.cli import main
from repro.community import modularity
from repro.errors import ParameterError
from repro.graph import from_edges, generators


@pytest.fixture
def two_cliques():
    edges = []
    for base in (0, 6):
        for i in range(6):
            for j in range(6):
                if i != j:
                    edges.append((base + i, base + j))
    edges += [(0, 6), (6, 0)]
    return from_edges(12, edges)


class TestModularity:
    def test_planted_partition_high(self, two_cliques):
        q = modularity(two_cliques, [range(6), range(6, 12)])
        assert q > 0.45

    def test_single_community_zero(self, two_cliques):
        q = modularity(two_cliques, [range(12)])
        assert q == pytest.approx(0.0, abs=1e-12)

    def test_bad_partition_worse(self, two_cliques):
        good = modularity(two_cliques, [range(6), range(6, 12)])
        bad = modularity(two_cliques, [range(0, 12, 2), range(1, 12, 2)])
        assert bad < good

    def test_partial_coverage_allowed(self, two_cliques):
        q = modularity(two_cliques, [range(6)])
        assert -1.0 <= q <= 1.0

    def test_sbm_recovery_scores_high(self):
        from repro.graph.generators import block_membership

        sizes = [40, 40, 40]
        g = generators.stochastic_block_model(sizes, 0.25, 0.005, seed=1)
        labels = block_membership(sizes)
        communities = [np.flatnonzero(labels == c) for c in range(3)]
        assert modularity(g, communities) > 0.5

    def test_validation(self, two_cliques):
        with pytest.raises(ParameterError):
            modularity(two_cliques, [])
        with pytest.raises(ParameterError):
            modularity(two_cliques, [[99]])
        with pytest.raises(ParameterError):
            modularity(from_edges(3, []), [range(3)])


def make_doc(values):
    table = Table(title="Table X -- avg query time (seconds)",
                  headers=["dataset", "algo"])
    for name, value in values.items():
        table.add_row(name, value)
    return {"experiment": "x", "artifacts": [
        __import__("repro.bench.export", fromlist=["artifact_to_dict"])
        .artifact_to_dict(table)
    ]}


class TestCompare:
    def test_ratio_and_flags(self):
        base = make_doc({"dblp": 1.0, "lj": 2.0})
        cand = make_doc({"dblp": 2.0, "lj": 2.0})
        [table] = compare_documents(base, cand)
        rows = {row[0]: row for row in table.rows}
        assert rows["dblp"][4] == pytest.approx(2.0)
        assert rows["dblp"][5] == "slower"
        assert rows["lj"][4] == pytest.approx(1.0)
        assert rows["lj"][5] == ""

    def test_faster_flag(self):
        base = make_doc({"dblp": 2.0})
        cand = make_doc({"dblp": 1.0})
        [table] = compare_documents(base, cand)
        assert table.rows[0][5] == "faster"

    def test_no_shared_artifacts(self):
        base = make_doc({"a": 1.0})
        cand = {"experiment": "y", "artifacts": []}
        with pytest.raises(ParameterError):
            compare_documents(base, cand)

    def test_file_roundtrip(self, tmp_path):
        table = Table(title="T", headers=["name", "seconds"])
        table.add_row("x", 1.0)
        a = export_json([table], tmp_path / "a.json")
        table2 = Table(title="T", headers=["name", "seconds"])
        table2.add_row("x", 3.0)
        b = export_json([table2], tmp_path / "b.json")
        [comparison] = compare_files(a, b)
        assert comparison.rows[0][4] == pytest.approx(3.0)


class TestCLISubcommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "twitter" in out
        assert "friendster" in out

    def test_compare_subcommand(self, tmp_path, capsys):
        table = Table(title="T -- seconds", headers=["name", "seconds"])
        table.add_row("x", 1.0)
        a = export_json([table], tmp_path / "a.json")
        table.rows[0][1] = 4.0
        b = export_json([table], tmp_path / "b.json")
        assert main(["compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "compare: T -- seconds" in out
        assert "slower" in out
