"""Tests for the backward-push kernel and its invariant."""

import pytest

from repro.baselines.inverse import ExactSolver
from repro.errors import ParameterError
from repro.graph import from_edges, generators
from repro.push import backward_push

ALPHA = 0.2


def backward_invariant_gap(graph, target, reserve, residue, truth_vectors):
    """Max violation of pi(s,t) = reserve(s) + sum_v residue(v) pi(s,v)."""
    worst = 0.0
    for s in range(graph.n):
        value = reserve[s] + float(truth_vectors[s] @ residue)
        truth = truth_vectors[s][target]
        worst = max(worst, abs(value - truth))
    return worst


class TestBackwardInvariant:
    def test_against_exact_on_cycle_graph(self):
        g = generators.paper_figure3_graph()
        solver = ExactSolver(g, ALPHA)
        truth = [solver.query(s).estimates for s in range(g.n)]
        for target in range(g.n):
            reserve, residue, _ = backward_push(g, target, ALPHA, 1e-4)
            assert backward_invariant_gap(g, target, reserve, residue,
                                          truth) < 1e-10

    def test_against_exact_on_random_graph(self):
        g = generators.preferential_attachment(50, 2, seed=1)
        solver = ExactSolver(g, ALPHA)
        truth = [solver.query(s).estimates for s in range(g.n)]
        for target in (0, 7, 23):
            reserve, residue, _ = backward_push(g, target, ALPHA, 1e-3)
            assert backward_invariant_gap(g, target, reserve, residue,
                                          truth) < 1e-10

    def test_dangling_target_special_case(self):
        g = from_edges(4, [(0, 1), (1, 2), (2, 3), (2, 0)])  # 3 is dangling
        solver = ExactSolver(g, ALPHA)
        truth = [solver.query(s).estimates for s in range(g.n)]
        reserve, residue, _ = backward_push(g, 3, ALPHA, 1e-6)
        assert backward_invariant_gap(g, 3, reserve, residue, truth) < 1e-10

    def test_exact_limit(self):
        """At a tiny threshold the reserve converges to the column of pi."""
        g = generators.preferential_attachment(40, 2, seed=5)
        solver = ExactSolver(g, ALPHA)
        target = 11
        reserve, residue, _ = backward_push(g, target, ALPHA, 1e-12)
        assert residue.max() < 1e-12
        for s in (0, 3, 17):
            truth = solver.query(s).estimates[target]
            assert reserve[s] == pytest.approx(truth, abs=1e-9)


class TestBackwardBehaviour:
    def test_residues_stop_below_threshold(self, ba_graph):
        _, residue, _ = backward_push(ba_graph, 9, ALPHA, 1e-4)
        assert residue.max() < 1e-4

    def test_push_budget(self, ba_graph):
        _, _, stats = backward_push(ba_graph, 9, ALPHA, 1e-9, max_pushes=3)
        assert stats.pushes <= 3

    def test_target_out_of_range(self, tiny_graph):
        with pytest.raises(ParameterError):
            backward_push(tiny_graph, 42, ALPHA, 1e-3)

    def test_restart_policy_with_dangling_rejected(self, tiny_graph):
        g = tiny_graph.with_dangling("restart")
        with pytest.raises(ParameterError):
            backward_push(g, 0, ALPHA, 1e-3)

    def test_bad_params(self, tiny_graph):
        with pytest.raises(ParameterError):
            backward_push(tiny_graph, 0, 0.0, 1e-3)
        with pytest.raises(ParameterError):
            backward_push(tiny_graph, 0, ALPHA, -1.0)
