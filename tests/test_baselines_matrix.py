"""Tests for the matrix-decomposition baselines: B-LIN and QR."""

import numpy as np
import pytest

from repro.baselines import BLinIndex, QRIndex
from repro.errors import ParameterError
from repro.graph import generators

ALPHA = 0.2


class TestQR:
    def test_exact_to_floating_point(self, ba_graph, exact):
        index = QRIndex(ba_graph, alpha=ALPHA)
        for source in (0, 17, 101):
            truth = exact.query(source).estimates
            result = index.query(source)
            assert np.max(np.abs(result.estimates - truth)) < 1e-10

    def test_index_is_dense(self, ba_graph):
        index = QRIndex(ba_graph)
        assert index.index_bytes >= 2 * ba_graph.n * ba_graph.n * 8
        assert index.preprocess_seconds > 0

    def test_max_nodes_guard(self):
        g = generators.preferential_attachment(200, 2, seed=1)
        with pytest.raises(ParameterError):
            QRIndex(g, max_nodes=100)

    def test_restart_policy_rejected(self, tiny_graph):
        with pytest.raises(ParameterError):
            QRIndex(tiny_graph.with_dangling("restart"))

    def test_query_validation(self, ba_graph):
        index = QRIndex(ba_graph)
        with pytest.raises(ParameterError):
            index.query(-1)


class TestBLin:
    def test_full_rank_blocks_are_exact_without_cross_edges(self, exact,
                                                            ba_graph):
        # With a single block the "block inverse" is the whole system.
        index = BLinIndex(ba_graph, num_blocks=1, rank=0)
        truth = exact.query(0).estimates
        result = index.query(0)
        assert np.max(np.abs(result.estimates - truth)) < 1e-10

    def test_rank_zero_ignores_cross_edges(self, ba_graph, exact):
        index = BLinIndex(ba_graph, num_blocks=4, rank=0)
        truth = exact.query(0).estimates
        result = index.query(0)
        # Approximation error is real but bounded: it only misses the
        # cross-block propagation.
        error = np.max(np.abs(result.estimates - truth))
        assert 0 < error < 0.5

    def test_higher_rank_more_accurate(self, ba_graph, exact):
        truth = exact.query(0).estimates
        errors = {}
        for rank in (0, 8, 64):
            index = BLinIndex(ba_graph, num_blocks=4, rank=rank)
            result = index.query(0)
            errors[rank] = float(np.abs(result.estimates - truth).max())
        assert errors[64] < errors[8] < errors[0]

    def test_full_rank_recovers_exact(self, exact, ba_graph):
        # The cross-block spectrum of a social graph decays slowly (the
        # reason B-LIN is dominated in practice); only near-full rank
        # recovers the exact answer.
        index = BLinIndex(ba_graph, num_blocks=2, rank=ba_graph.n - 10)
        truth = exact.query(5).estimates
        result = index.query(5)
        assert np.max(np.abs(result.estimates - truth)) < 1e-8

    def test_metadata(self, ba_graph):
        index = BLinIndex(ba_graph, num_blocks=4, rank=8)
        assert index.preprocess_seconds > 0
        assert index.index_bytes > 0
        result = index.query(0)
        assert result.extras["rank"] == 8
        assert result.extras["num_blocks"] == 4

    def test_validation(self, ba_graph):
        with pytest.raises(ParameterError):
            BLinIndex(ba_graph, num_blocks=0)
        with pytest.raises(ParameterError):
            BLinIndex(ba_graph, rank=-1)
        with pytest.raises(ParameterError):
            BLinIndex(ba_graph.with_dangling("restart"))
