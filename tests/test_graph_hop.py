"""Tests for hop layers, hop sets and the vectorized BFS."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graph import from_edges, generators, hop_structure
from repro.graph.hop import UNREACHED, expand_ranges


class TestHopStructure:
    def test_layers_on_tiny_graph(self, tiny_graph):
        hops = hop_structure(tiny_graph, 0, 4)
        assert list(hops.layer(0)) == [0]
        assert list(hops.layer(1)) == [1]
        assert sorted(hops.layer(2)) == [2, 3]
        assert sorted(hops.layer(3)) == [4]
        assert sorted(hops.layer(4)) == [5]

    def test_hop_set_union_of_layers(self, tiny_graph):
        hops = hop_structure(tiny_graph, 0, 3)
        expected = sorted(
            set(hops.layer(0)) | set(hops.layer(1))
            | set(hops.layer(2)) | set(hops.layer(3))
        )
        assert sorted(hops.hop_set(3)) == expected

    def test_truncation_marks_unreached(self, tiny_graph):
        hops = hop_structure(tiny_graph, 0, 1)
        assert hops.distances[4] == UNREACHED
        assert hops.distances[5] == UNREACHED

    def test_boundary_layer(self, tiny_graph):
        hops = hop_structure(tiny_graph, 0, 2)
        assert sorted(hops.boundary_layer) == [2, 3]

    def test_within_mask(self, tiny_graph):
        hops = hop_structure(tiny_graph, 0, 3)
        mask = hops.within(2)
        assert sorted(np.flatnonzero(mask)) == [0, 1, 2, 3]

    def test_zero_hops(self, tiny_graph):
        hops = hop_structure(tiny_graph, 3, 0)
        assert list(hops.hop_set(0)) == [3]
        assert (hops.distances >= 0).sum() == 1

    def test_source_out_of_range(self, tiny_graph):
        with pytest.raises(ParameterError):
            hop_structure(tiny_graph, 77, 2)
        with pytest.raises(ParameterError):
            hop_structure(tiny_graph, 0, -1)

    def test_matches_networkx_bfs(self, ba_graph):
        nx = pytest.importorskip("networkx")
        from repro.graph import to_networkx

        source = 5
        hops = hop_structure(ba_graph, source, 3)
        lengths = nx.single_source_shortest_path_length(
            to_networkx(ba_graph), source, cutoff=3
        )
        for v in range(ba_graph.n):
            expected = lengths.get(v, UNREACHED)
            assert hops.distances[v] == expected

    def test_ring_layers(self):
        g = generators.ring(10)
        hops = hop_structure(g, 0, 9)
        for i in range(10):
            assert list(hops.layer(i)) == [i]

    def test_disconnected_component_unreached(self):
        g = from_edges(5, [(0, 1), (2, 3), (3, 2)])
        hops = hop_structure(g, 0, 4)
        assert hops.distances[2] == UNREACHED
        assert hops.distances[4] == UNREACHED


class TestExpandRanges:
    def test_simple(self):
        out = expand_ranges([0, 10], [3, 2])
        assert list(out) == [0, 1, 2, 10, 11]

    def test_zero_counts_skipped(self):
        out = expand_ranges([5, 7, 9], [0, 2, 0])
        assert list(out) == [7, 8]

    def test_empty(self):
        assert expand_ranges([], []).size == 0

    def test_matches_naive_on_random_input(self, rng):
        starts = rng.integers(0, 1000, size=50)
        counts = rng.integers(0, 8, size=50)
        expected = np.concatenate(
            [np.arange(s, s + c) for s, c in zip(starts, counts)]
        ) if counts.sum() else np.empty(0, dtype=np.int64)
        out = expand_ranges(starts, counts)
        assert np.array_equal(out, expected)

    def test_gathers_adjacency(self, tiny_graph):
        nodes = np.array([1, 2])
        starts = tiny_graph.indptr[nodes]
        counts = tiny_graph.out_degrees[nodes]
        gathered = tiny_graph.indices[expand_ranges(starts, counts)]
        expected = np.concatenate([
            tiny_graph.out_neighbors(1), tiny_graph.out_neighbors(2)
        ])
        assert np.array_equal(gathered, expected)
