"""Tests for the vectorized random-walk engine."""

import numpy as np
import pytest

from repro.baselines.inverse import ExactSolver
from repro.baselines.power import power_iteration
from repro.errors import ParameterError
from repro.graph import from_edges, generators
from repro.walks import (
    residue_weighted_walks,
    sample_walk_endpoints,
    sample_walk_endpoints_batch,
    walk_terminal_mass,
    walks_from_single_source,
)

ALPHA = 0.2


class TestTerminalMass:
    def test_total_mass_equals_walk_count(self, ba_graph, rng):
        mass = walks_from_single_source(ba_graph, 0, 500, ALPHA, rng)
        assert mass.sum() == pytest.approx(500.0)
        assert np.all(mass >= 0)

    def test_weights_accumulate(self, tiny_graph, rng):
        starts = np.array([5, 5, 5])
        weights = np.array([0.5, 0.25, 0.25])
        mass = walk_terminal_mass(tiny_graph, starts, ALPHA, rng,
                                  weights=weights)
        # Node 5 is dangling: every walk terminates there immediately.
        assert mass[5] == pytest.approx(1.0)
        assert mass.sum() == pytest.approx(1.0)

    def test_empty_starts(self, tiny_graph, rng):
        mass = walk_terminal_mass(tiny_graph, np.empty(0, np.int64), ALPHA,
                                  rng)
        assert mass.sum() == 0.0

    def test_distribution_matches_exact(self, rng):
        g = generators.preferential_attachment(40, 2, seed=2)
        truth = ExactSolver(g, ALPHA).query(0).estimates
        mass = walks_from_single_source(g, 0, 60_000, ALPHA, rng)
        empirical = mass / 60_000
        assert np.max(np.abs(empirical - truth)) < 0.02

    def test_restart_policy_distribution(self, rng):
        g = from_edges(4, [(0, 1), (1, 2), (2, 3)]).with_dangling("restart")
        truth = power_iteration(g, 0, alpha=ALPHA, tol=1e-13).estimates
        mass = walks_from_single_source(g, 0, 60_000, ALPHA, rng)
        assert np.max(np.abs(mass / 60_000 - truth)) < 0.02

    def test_bad_inputs(self, tiny_graph, rng):
        with pytest.raises(ParameterError):
            walk_terminal_mass(tiny_graph, np.zeros((2, 2), np.int64),
                               ALPHA, rng)
        with pytest.raises(ParameterError):
            walk_terminal_mass(tiny_graph, np.array([0]), 0.0, rng)
        with pytest.raises(ParameterError):
            walk_terminal_mass(tiny_graph, np.array([0]), ALPHA, rng,
                               weights=np.array([1.0, 2.0]))


class TestResidueWeightedWalks:
    def test_zero_residue_is_noop(self, tiny_graph, rng):
        mass, used = residue_weighted_walks(
            tiny_graph, np.zeros(tiny_graph.n), 100, ALPHA, rng
        )
        assert used == 0
        assert mass.sum() == 0.0

    def test_mass_sums_to_residue_sum(self, ba_graph, rng):
        residue = np.zeros(ba_graph.n)
        residue[3] = 0.04
        residue[17] = 0.01
        mass, used = residue_weighted_walks(ba_graph, residue, 2_000, ALPHA,
                                            rng)
        # Each walk from v contributes residue[v]/n_r(v); summing over all
        # walks reproduces r_sum exactly.
        assert mass.sum() == pytest.approx(0.05)
        assert used >= 2_000

    def test_unbiasedness(self, rng):
        g = generators.preferential_attachment(30, 2, seed=9)
        solver = ExactSolver(g, ALPHA)
        residue = np.zeros(g.n)
        residue[2] = 0.5
        residue[10] = 0.5
        expected = 0.5 * solver.query(2).estimates \
            + 0.5 * solver.query(10).estimates
        total = np.zeros(g.n)
        trials = 60
        for t in range(trials):
            mass, _ = residue_weighted_walks(
                g, residue, 400, ALPHA, np.random.default_rng(t)
            )
            total += mass
        assert np.max(np.abs(total / trials - expected)) < 0.02


class TestEndpointSampling:
    def test_single_source_shapes(self, ba_graph, rng):
        endpoints = sample_walk_endpoints(ba_graph, 4, 100, ALPHA, rng)
        assert endpoints.shape == (100,)
        assert endpoints.min() >= 0
        assert endpoints.max() < ba_graph.n

    def test_batch_matches_distribution(self, rng):
        g = generators.preferential_attachment(40, 2, seed=2)
        truth = ExactSolver(g, ALPHA).query(0).estimates
        starts = np.zeros(40_000, dtype=np.int64)
        endpoints = sample_walk_endpoints_batch(g, starts, ALPHA, rng)
        empirical = np.bincount(endpoints, minlength=g.n) / starts.size
        assert np.max(np.abs(empirical - truth)) < 0.02

    def test_dangling_start_terminates_there(self, tiny_graph, rng):
        endpoints = sample_walk_endpoints(tiny_graph, 5, 50, ALPHA, rng)
        assert np.all(endpoints == 5)

    def test_empty_batch(self, tiny_graph, rng):
        out = sample_walk_endpoints_batch(tiny_graph,
                                          np.empty(0, np.int64), ALPHA, rng)
        assert out.size == 0


def test_walks_deterministic_per_seed(ba_graph):
    a = walks_from_single_source(ba_graph, 0, 200, ALPHA,
                                 np.random.default_rng(1))
    b = walks_from_single_source(ba_graph, 0, 200, ALPHA,
                                 np.random.default_rng(1))
    c = walks_from_single_source(ba_graph, 0, 200, ALPHA,
                                 np.random.default_rng(2))
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


class TestChunking:
    def test_chunked_matches_unchunked_total(self, ba_graph):
        starts = np.zeros(5_000, dtype=np.int64)
        mass = walk_terminal_mass(ba_graph, starts, ALPHA,
                                  np.random.default_rng(0), chunk_size=700)
        assert mass.sum() == pytest.approx(5_000.0)

    def test_chunked_weights_aligned(self, tiny_graph):
        # Start at the dangling node so every walk ends where it starts;
        # chunking must keep each weight with its own walk.
        starts = np.full(10, 5, dtype=np.int64)
        weights = np.arange(10, dtype=np.float64)
        mass = walk_terminal_mass(tiny_graph, starts, ALPHA,
                                  np.random.default_rng(0),
                                  weights=weights, chunk_size=3)
        assert mass[5] == pytest.approx(weights.sum())

    def test_chunked_distribution_unbiased(self, rng):
        from repro.baselines.inverse import ExactSolver
        from repro.graph import generators

        g = generators.preferential_attachment(40, 2, seed=2)
        truth = ExactSolver(g, ALPHA).query(0).estimates
        starts = np.zeros(30_000, dtype=np.int64)
        mass = walk_terminal_mass(g, starts, ALPHA, rng, chunk_size=4_096)
        assert np.max(np.abs(mass / starts.size - truth)) < 0.02


class TestChunkedEquivalence:
    """Chunked and unchunked runs must agree walk-for-walk.

    An edgeless graph pins every walk to its start node regardless of the
    RNG stream, so the terminal mass is exactly
    ``bincount(starts, weights)`` -- any weight misalignment or dropped
    slice shows up as an exact mismatch, not statistical noise.
    """

    @staticmethod
    def _edgeless(n):
        from repro.graph import CSRGraph

        return CSRGraph(n, np.zeros(n + 1, dtype=np.int64),
                        np.empty(0, dtype=np.int64))

    def test_weights_exact_vs_unchunked(self):
        g = self._edgeless(8)
        starts = np.arange(40, dtype=np.int64) % g.n
        weights = np.linspace(0.1, 4.0, 40)
        unchunked = walk_terminal_mass(g, starts, ALPHA,
                                       np.random.default_rng(0),
                                       weights=weights)
        chunked = walk_terminal_mass(g, starts, ALPHA,
                                     np.random.default_rng(0),
                                     weights=weights, chunk_size=7)
        expected = np.bincount(starts, weights=weights, minlength=g.n)
        assert np.array_equal(unchunked, expected)
        assert np.array_equal(chunked, expected)

    @pytest.mark.parametrize("size_delta", [-1, 0, 1])
    def test_exact_chunk_boundaries(self, size_delta):
        # Batch sizes straddling an exact multiple of the chunk size:
        # the last slice is full, exactly empty-adjacent, or length 1.
        chunk = 16
        g = self._edgeless(5)
        n_walks = 3 * chunk + size_delta
        starts = (np.arange(n_walks, dtype=np.int64) * 7) % g.n
        weights = 1.0 + np.arange(n_walks, dtype=np.float64)
        mass = walk_terminal_mass(g, starts, ALPHA,
                                  np.random.default_rng(0),
                                  weights=weights, chunk_size=chunk)
        expected = np.bincount(starts, weights=weights, minlength=g.n)
        assert np.array_equal(mass, expected)

    def test_list_weights_accepted(self):
        # The chunked path converts weights to an array exactly once;
        # plain Python lists must still work (and slice correctly).
        g = self._edgeless(4)
        starts = np.array([0, 1, 2, 3, 0, 1], dtype=np.int64)
        mass = walk_terminal_mass(g, starts, ALPHA,
                                  np.random.default_rng(0),
                                  weights=[1, 2, 3, 4, 5, 6],
                                  chunk_size=4)
        assert np.array_equal(mass, np.array([6.0, 8.0, 3.0, 4.0]))

    def test_restart_policy_conserves_mass_chunked(self):
        # Under "restart" every walk ends only via the alpha-coin, so the
        # total deposited weight equals the weight sum exactly -- chunked
        # or not -- and a per-chunk `source` override must survive slicing.
        g = from_edges(4, [(0, 1), (1, 2), (2, 3)]).with_dangling("restart")
        starts = np.zeros(5_000, dtype=np.int64)
        weights = np.full(5_000, 2e-4)
        for chunk in (None, 640):
            mass = walk_terminal_mass(g, starts, ALPHA,
                                      np.random.default_rng(3),
                                      weights=weights, source=0,
                                      chunk_size=chunk)
            assert mass.sum() == pytest.approx(weights.sum(), abs=1e-12)

    def test_restart_policy_distribution_chunked(self):
        from repro.baselines.power import power_iteration

        g = from_edges(4, [(0, 1), (1, 2), (2, 3)]).with_dangling("restart")
        truth = power_iteration(g, 0, alpha=ALPHA, tol=1e-13).estimates
        starts = np.zeros(60_000, dtype=np.int64)
        mass = walk_terminal_mass(g, starts, ALPHA,
                                  np.random.default_rng(4),
                                  source=0, chunk_size=8_192)
        assert np.max(np.abs(mass / starts.size - truth)) < 0.02

    def test_chunked_weight_shape_mismatch_raises(self):
        g = self._edgeless(3)
        with pytest.raises(ParameterError):
            walk_terminal_mass(g, np.zeros(10, np.int64), ALPHA,
                               np.random.default_rng(0),
                               weights=np.ones(9), chunk_size=4)
