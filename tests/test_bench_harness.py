"""Tests for the bench harness, solver factories and CLI plumbing."""

import numpy as np
import pytest

from repro.bench import ALL_EXPERIMENTS, BenchConfig, GroundTruthCache
from repro.bench.harness import SolverRun, run_suite, timed, truths_for
from repro.bench.solvers import (
    make_fora,
    make_mc,
    make_power,
    make_resacc,
    rng_for,
)
from repro.cli import build_parser, config_from_args, main
from repro.core import AccuracyParams
from repro.graph import generators


@pytest.fixture(scope="module")
def graph():
    return generators.preferential_attachment(200, 3, seed=1)


class TestBenchConfig:
    def test_defaults_are_paper_settings(self):
        cfg = BenchConfig()
        assert cfg.delta_scale == 1.0
        assert cfg.eps == 0.5

    def test_fast_defaults(self):
        cfg = BenchConfig.fast_defaults()
        assert cfg.fast
        assert cfg.scale < 1.0

    def test_accuracy_for(self, graph):
        cfg = BenchConfig()
        acc = cfg.accuracy_for(graph)
        assert acc.delta == pytest.approx(1 / graph.n)
        assert acc.p_f == pytest.approx(1 / graph.n)

    def test_sources_deterministic(self, graph):
        cfg = BenchConfig(num_sources=4)
        assert cfg.sources_for(graph) == cfg.sources_for(graph)
        assert len(cfg.sources_for(graph)) == 4

    def test_scaled_override(self):
        cfg = BenchConfig().scaled(num_sources=9)
        assert cfg.num_sources == 9
        assert cfg.delta_scale == 1.0


class TestGroundTruthCache:
    def test_caches_and_matches_power(self, graph):
        from repro.baselines import power_iteration

        cache = GroundTruthCache()
        a = cache.truth(graph, 0)
        b = cache.truth(graph, 0)
        assert a is b
        iterated = power_iteration(graph, 0, tol=1e-13).estimates
        assert np.max(np.abs(a - iterated)) < 1e-9


class TestRunSuite:
    def test_collects_times_and_estimates(self, graph):
        acc = AccuracyParams.paper_defaults(graph.n)
        solvers = {
            "MC": make_mc(acc, seed=0),
            "ResAcc": make_resacc(acc, 1, seed=0),
        }
        runs = run_suite(graph, [0, 5], solvers)
        assert set(runs) == {"MC", "ResAcc"}
        assert len(runs["MC"].seconds) == 2
        assert runs["ResAcc"].estimates[0].shape == (graph.n,)
        assert runs["MC"].mean_seconds > 0

    def test_metric_helpers(self, graph):
        acc = AccuracyParams.paper_defaults(graph.n)
        cache = GroundTruthCache()
        runs = run_suite(graph, [0], {"FORA": make_fora(acc, seed=0)})
        truths = truths_for(cache, graph, [0])
        run = runs["FORA"]
        errs = run.mean_abs_error_at_kth(truths, (1, 10))
        assert set(errs) == {1, 10}
        ndcg = run.mean_ndcg_at(truths, (10,))
        assert 0 <= ndcg[10] <= 1
        assert len(run.per_source_abs_errors(truths)) == 1

    def test_timed(self):
        value, seconds = timed(lambda: 42)
        assert value == 42
        assert seconds >= 0

    def test_solver_run_empty(self):
        run = SolverRun(name="x")
        assert np.isnan(run.mean_seconds)


class TestSolverFactories:
    def test_rng_for_deterministic(self):
        a = rng_for(1, 2).random(3)
        b = rng_for(1, 2).random(3)
        c = rng_for(1, 3).random(3)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_power_factory(self, graph):
        result = make_power(tol=1e-8)(graph, 0)
        assert result.algorithm == "power"

    def test_resacc_factory_h(self, graph):
        acc = AccuracyParams.paper_defaults(graph.n)
        result = make_resacc(acc, 2, seed=0)(graph, 0)
        assert result.algorithm == "resacc"


class TestCLI:
    def test_experiment_registry_complete(self):
        expected = {
            "table2", "table3", "table4", "table5", "table6", "table7",
            "fig1", "fig3", "fig4", "fig5", "fig6", "fig7-10", "fig11",
            "fig12-13", "fig14-15", "fig16-17", "fig18-20", "fig21",
            "fig22", "fig23", "fig24",
            "ext-alpha", "ext-estimator", "ext-scheduling", "ext-weighted",
        }
        assert expected == set(ALL_EXPERIMENTS)

    def test_parser_and_config(self):
        parser = build_parser()
        args = parser.parse_args(["run", "fig1", "--fast", "--sources", "2"])
        cfg = config_from_args(args)
        assert cfg.fast
        assert cfg.num_sources == 2

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "nonsense"]) == 2

    def test_run_fig1(self, capsys):
        assert main(["run", "fig1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "residue accumulation" in out


class TestSolverFactoriesExtra:
    def test_fwd_factory_default_threshold_scales_with_graph(self, graph):
        from repro.bench.solvers import make_fwd

        result = make_fwd()(graph, 0)
        assert result.extras["r_max"] == pytest.approx(
            1.0 / (50.0 * graph.m))

    def test_fwd_factory_explicit_threshold(self, graph):
        from repro.bench.solvers import make_fwd

        result = make_fwd(r_max=1e-4)(graph, 0)
        assert result.extras["r_max"] == 1e-4

    def test_index_solver_ignores_graph_argument(self, graph):
        from repro.baselines import TPAIndex
        from repro.bench.solvers import make_index_solver

        index = TPAIndex(graph)
        solver = make_index_solver(index)
        result = solver(None, 5)  # the bound index supplies the graph
        assert result.source == 5

    def test_topppr_factory(self, graph):
        from repro.bench.solvers import make_topppr
        from repro.core import AccuracyParams

        acc = AccuracyParams.paper_defaults(graph.n)
        result = make_topppr(acc, k=10, seed=0, max_candidates=8)(graph, 0)
        assert result.algorithm == "topppr"
        assert result.extras["candidates"] <= 8


class TestTopKBenchmark:
    def test_doc_shape_and_gates(self, graph):
        from repro.bench import TOPK_BENCH_KIND, topk_benchmark

        doc = topk_benchmark(graph, k=3, num_sources=3, eps=0.3,
                             seed=2, delta_scale=5.0)
        assert doc["kind"] == TOPK_BENCH_KIND
        assert doc["k"] == 3
        assert doc["workload"]["num_sources"] == 3
        assert len(doc["per_source"]) == 3
        assert doc["separated_count"] + doc["fallback_count"] == 3
        assert doc["speedup"] > 0
        # The correctness gate: separated sources always agree.
        assert doc["agreement"] is True
        assert doc["disagreements"] == []
        for entry in doc["per_source"]:
            assert entry["path"] in ("topk", "full")
            assert entry["separated"] == (entry["path"] == "topk")

    def test_cli_topk_parser_defaults(self):
        args = build_parser().parse_args(["topk", "dblp"])
        assert args.k == 4
        assert args.sources == 20
        assert args.eps == 0.05
        assert args.guard_factor == 1.0
        assert args.min_speedup is None

    def test_trend_kind_registered(self):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "bench_trend",
            Path(__file__).resolve().parent.parent
            / "benchmarks" / "bench_trend.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.KNOWN_METRICS["repro-topk-bench"] == ("speedup",)


class TestDynamicBenchmark:
    def test_doc_shape_and_headline_metrics(self):
        from repro.bench import DYNAMIC_BENCH_KIND, dynamic_benchmark
        from tests.test_serving_dynamic import broadcaster_graph

        graph = broadcaster_graph()
        # random_seeds may land sources anywhere, including on the
        # broadcaster's leaves (score mass on the only degree >= 2
        # site); the relaxed delta and tight solve margin guarantee a
        # first-edit drift below budget for any source placement.
        accuracy = AccuracyParams(eps=0.5, delta=0.3, p_f=1.0 / graph.n)
        doc = dynamic_benchmark(graph, num_unique=3, rounds=3,
                                write_every=4, accuracy=accuracy,
                                solve_margin=0.25, num_workers=2, seed=0)
        assert doc["kind"] == DYNAMIC_BENCH_KIND
        assert doc["workload"]["write_fraction"] == pytest.approx(1 / 5)
        for variant in ("read_only", "quiesce", "incremental"):
            entry = doc[variant]
            assert entry["reads"] == 9
            assert entry["p95_read_seconds"] >= entry["p50_read_seconds"]
        assert doc["read_only"]["writes"] == 0
        assert doc["incremental"]["writes"] == 2
        # The quiesce variant never retains; the incremental one does
        # at the benchmark's low-impact mutation site.
        assert doc["quiesce"]["stats"]["entries_retained"] == 0
        assert doc["incremental"]["stats"]["entries_retained"] > 0
        assert 0.0 < doc["retention_rate"] <= 1.0
        assert doc["p95_ratio_vs_read_only"] > 0
        assert doc["retained_within_contract"] is True

    def test_cli_dynamic_parser_defaults(self):
        args = build_parser().parse_args(["dynamic", "dblp"])
        assert args.sources == 8
        assert args.rounds == 12
        assert args.write_every == 8
        assert args.solve_margin == 0.5
        assert args.delta_scale == 1.0
        assert args.min_retention is None
        assert args.max_p95_ratio is None

    def test_trend_kind_registered(self):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "bench_trend",
            Path(__file__).resolve().parent.parent
            / "benchmarks" / "bench_trend.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.KNOWN_METRICS["repro-dynamic-bench"] == (
            "retention_rate",)
