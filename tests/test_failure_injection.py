"""Failure-injection tests: corrupted inputs and adversarial conditions.

The library's contract is that malformed state is rejected loudly at
the boundary (GraphFormatError / ParameterError) and that resource
budgets fail with ConvergenceError rather than hanging.
"""

import numpy as np
import pytest

from repro.core import AccuracyParams, resacc
from repro.errors import ConvergenceError, GraphFormatError
from repro.graph import CSRGraph, from_edges, load_npz, save_npz
from repro.push import forward_push_loop, init_state
from repro.walks.engine import walk_terminal_mass


class TestCorruptedCSR:
    def test_non_monotone_indptr(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(3, np.array([0, 2, 1, 3]), np.array([1, 2, 0]))

    def test_indptr_not_spanning_indices(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(2, np.array([0, 1, 1]), np.array([1, 0]))

    def test_wrong_indptr_length(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(5, np.array([0, 1]), np.array([1]))

    def test_target_out_of_range(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(2, np.array([0, 1, 1]), np.array([7]))

    def test_negative_target(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(2, np.array([0, 1, 1]), np.array([-1]))

    def test_validate_false_trusts_caller(self):
        # The escape hatch exists for internal use; it must not crash
        # on construction (behaviour is then the caller's problem).
        g = CSRGraph(2, np.array([0, 1, 2]), np.array([1, 0]),
                     validate=False)
        assert g.m == 2


class TestCorruptedFiles:
    def test_truncated_npz(self, tmp_path, ba_graph):
        path = tmp_path / "graph.npz"
        save_npz(ba_graph, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(Exception):  # zipfile/numpy error surface
            load_npz(path)

    def test_wrong_version_rejected(self, tmp_path, ba_graph):
        path = tmp_path / "graph.npz"
        save_npz(ba_graph, path)
        with np.load(path) as data:
            contents = {k: data[k] for k in data.files}
        contents["version"] = np.int64(999)
        np.savez_compressed(path, **contents)
        with pytest.raises(GraphFormatError):
            load_npz(path)

    def test_npz_with_corrupted_arrays_rejected(self, tmp_path, ba_graph):
        path = tmp_path / "graph.npz"
        save_npz(ba_graph, path)
        with np.load(path) as data:
            contents = {k: data[k] for k in data.files}
        contents["indices"] = contents["indices"][:-5]  # drop edges
        np.savez_compressed(path, **contents)
        with pytest.raises(GraphFormatError):
            load_npz(path)


class TestBudgetExhaustion:
    def test_push_budget_raises_not_hangs(self, ba_graph):
        reserve, residue = init_state(ba_graph, 0)
        with pytest.raises(ConvergenceError):
            forward_push_loop(ba_graph, reserve, residue, 0.2, 1e-14,
                              max_pushes=10)

    def test_walk_step_cap_raises(self, ba_graph):
        class NeverStopRNG:
            """Adversarial stream: the termination coin never fires."""

            def random(self, size=None):
                return np.full(size, 0.999) if size is not None else 0.999

        with pytest.raises(ConvergenceError):
            walk_terminal_mass(ba_graph, np.zeros(4, np.int64), 0.2,
                               NeverStopRNG(), max_steps=50)

    def test_power_iteration_budget(self, ba_graph):
        from repro.baselines import power_iteration

        with pytest.raises(ConvergenceError):
            power_iteration(ba_graph, 0, tol=1e-15, max_iters=3)


class TestDegenerateInputs:
    def test_single_node_graph(self):
        g = from_edges(1, [])
        result = resacc(g, 0, accuracy=AccuracyParams(eps=0.5, delta=0.5,
                                                      p_f=0.5), seed=0)
        assert result.estimates[0] == pytest.approx(1.0)

    def test_two_node_bounce(self):
        g = from_edges(2, [(0, 1)], symmetrize=True)
        result = resacc(g, 0, seed=0)
        assert result.estimates.sum() == pytest.approx(1.0, abs=1e-9)
        assert result.estimates[0] > result.estimates[1]

    def test_disconnected_source_component(self):
        g = from_edges(6, [(0, 1), (1, 0), (3, 4), (4, 5), (5, 3)])
        result = resacc(g, 0, seed=0)
        assert result.estimates[3:].sum() == 0.0

    def test_all_dangling_graph(self):
        g = from_edges(4, [])
        result = resacc(g, 2, seed=0)
        expected = np.zeros(4)
        expected[2] = 1.0
        assert np.allclose(result.estimates, expected)

    def test_extreme_alpha_values(self, ba_graph):
        from repro.core import ResAccParams

        for alpha in (0.01, 0.99):
            params = ResAccParams(alpha=alpha, h=1)
            acc = AccuracyParams(eps=0.5, delta=0.05, p_f=0.1)
            result = resacc(ba_graph, 0, params=params, accuracy=acc,
                            seed=0)
            assert result.estimates.sum() == pytest.approx(1.0, abs=1e-9)

    def test_nan_weight_rejected(self):
        from repro.weighted import from_weighted_edges

        with pytest.raises(GraphFormatError):
            # NaN fails the >= 0 check because the comparison is False.
            from_weighted_edges(2, [(0, 1, float("nan"))])


class TestServerRejections:
    """Malformed HTTP traffic gets structured 4xx answers, never a 500.

    One small server (tight body limit) serves the whole class; every
    rejection must leave it healthy for the next request.
    """

    @pytest.fixture(scope="class")
    def served(self):
        from repro.graph import generators
        from repro.server import ServerClient, ServerConfig, start_in_thread
        from repro.serving import ConcurrentQueryEngine

        graph = generators.preferential_attachment(60, 2, seed=3)
        engine = ConcurrentQueryEngine(graph, seed=1, max_workers=2)
        handle = start_in_thread(
            engine, ServerConfig(port=0, max_body_bytes=4096)
        )
        client = ServerClient(base_url=handle.url)
        yield handle, client
        client.close()
        handle.stop()

    def _raw(self, handle, method, path, body=b"", headers=()):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                          timeout=10)
        try:
            conn.request(method, path, body=body, headers=dict(headers))
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def test_bad_json_body_is_400(self, served):
        handle, _ = served
        status, body = self._raw(handle, "POST", "/query",
                                 body=b"{not json",
                                 headers={"Content-Type":
                                          "application/json"})
        assert status == 400
        assert b"error" in body

    def test_non_object_json_is_400(self, served):
        handle, _ = served
        status, _ = self._raw(handle, "POST", "/query", body=b"[1, 2]")
        assert status == 400

    def test_unknown_route_is_404(self, served):
        _, client = served
        from repro.server import ServerError

        with pytest.raises(ServerError) as excinfo:
            client.request("POST", "/no-such-endpoint", {"source": 0})
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, served):
        handle, _ = served
        status, _ = self._raw(handle, "GET", "/query")
        assert status == 405
        status, _ = self._raw(handle, "POST", "/healthz")
        assert status == 405

    def test_oversized_body_is_413(self, served):
        handle, _ = served
        blob = b'{"source": 0, "pad": "' + b"x" * 8192 + b'"}'
        status, _ = self._raw(handle, "POST", "/query", body=blob)
        assert status == 413

    def test_chunked_transfer_encoding_is_501(self, served):
        handle, _ = served
        status, _ = self._raw(
            handle, "POST", "/query", body=b"",
            headers={"Transfer-Encoding": "chunked"},
        )
        assert status == 501

    def test_bad_accuracy_is_400(self, served):
        _, client = served
        from repro.server import ServerError

        for accuracy in ({"eps": 0.5}, {"eps": "x", "delta": 0.1,
                                        "p_f": 0.1}):
            with pytest.raises(ServerError) as excinfo:
                client.query(0, accuracy=accuracy)
            assert excinfo.value.status == 400

    def test_unknown_mutate_op_is_400(self, served):
        _, client = served
        from repro.server import ServerError

        with pytest.raises(ServerError) as excinfo:
            client.request("POST", "/mutate", {"op": "explode", "u": 0})
        assert excinfo.value.status == 400
        assert "explode" in str(excinfo.value)

    def test_missing_and_non_integer_source_are_400(self, served):
        _, client = served
        from repro.server import ServerError

        for payload in ({}, {"source": "zero"}, {"source": True},
                        {"source": 1.5}):
            with pytest.raises(ServerError) as excinfo:
                client.request("POST", "/query", payload)
            assert excinfo.value.status == 400

    def test_out_of_range_source_is_400(self, served):
        _, client = served
        from repro.server import ServerError

        with pytest.raises(ServerError) as excinfo:
            client.query(10_000)
        assert excinfo.value.status == 400
        assert "out of range" in str(excinfo.value)

    def test_empty_batch_is_400(self, served):
        _, client = served
        from repro.server import ServerError

        with pytest.raises(ServerError) as excinfo:
            client.request("POST", "/query_batch", {"sources": []})
        assert excinfo.value.status == 400

    def test_server_still_healthy_after_rejections(self, served):
        _, client = served
        assert client.healthz() == {"status": "ok"}
        assert client.query(0)["source"] == 0
