"""Tests for the cached query-service facade."""

import numpy as np
import pytest

from repro.core import AccuracyParams
from repro.errors import ParameterError
from repro.graph import generators
from repro.service import QueryEngine


@pytest.fixture
def engine(ba_graph):
    accuracy = AccuracyParams.paper_defaults(ba_graph.n)
    return QueryEngine(ba_graph, accuracy=accuracy, cache_size=8, seed=1)


class TestQueries:
    def test_query_returns_distribution(self, engine):
        result = engine.query(0)
        assert result.estimates.sum() == pytest.approx(1.0, abs=1e-9)

    def test_cache_hit_returns_same_object(self, engine):
        first = engine.query(3)
        second = engine.query(3)
        assert first is second
        assert engine.stats.cache_hits == 1
        assert engine.stats.cache_misses == 1
        assert engine.stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction(self, ba_graph):
        engine = QueryEngine(ba_graph, cache_size=2, seed=1)
        a = engine.query(0)
        engine.query(1)
        engine.query(2)          # evicts source 0
        again = engine.query(0)  # recomputed
        assert again is not a
        assert engine.stats.cache_misses == 4

    def test_zero_cache(self, ba_graph):
        engine = QueryEngine(ba_graph, cache_size=0, seed=1)
        engine.query(0)
        engine.query(0)
        assert engine.stats.cache_hits == 0

    def test_top_k_and_recommend(self, engine):
        nodes, values = engine.top_k(0, 5)
        assert len(nodes) == 5
        picks = engine.recommend(0, 5)
        banned = {0} | set(int(v) for v in
                           engine.graph.out_neighbors(0))
        assert len(picks) == 5
        assert all(node not in banned for node, _ in picks)

    def test_source_validation(self, engine):
        with pytest.raises(ParameterError):
            engine.query(10_000)

    def test_cache_keyed_on_accuracy(self, ba_graph):
        """Regression: a result computed at a loose eps must never be
        served to a later query demanding a strict one."""
        engine = QueryEngine(ba_graph, cache_size=8, seed=1)
        loose = AccuracyParams(eps=1.0, delta=10.0 / ba_graph.n,
                               p_f=1.0 / ba_graph.n)
        tight = AccuracyParams(eps=0.2, delta=1.0 / ba_graph.n,
                               p_f=1.0 / ba_graph.n)
        loose_result = engine.query(0, accuracy=loose)
        tight_result = engine.query(0, accuracy=tight)
        assert tight_result is not loose_result
        assert engine.stats.cache_misses == 2
        # The strict query really ran at the strict setting.
        assert tight_result.walks_used > loose_result.walks_used
        # Each accuracy keeps its own cached entry.
        assert engine.query(0, accuracy=loose) is loose_result
        assert engine.query(0, accuracy=tight) is tight_result
        assert engine.stats.cache_hits == 2
        # The engine-default accuracy is a third, distinct key.
        default_result = engine.query(0)
        assert default_result is not loose_result
        assert default_result is not tight_result

    def test_cache_size_validation(self, ba_graph):
        with pytest.raises(ParameterError):
            QueryEngine(ba_graph, cache_size=-1)


class TestUpdates:
    def test_update_invalidates_cache(self, engine):
        before = engine.query(0)
        assert engine.add_edge(0, 250)
        after = engine.query(0)
        assert after is not before
        assert engine.stats.updates == 1
        assert engine.stats.invalidations == 1
        assert engine.graph.has_edge(0, 250)

    def test_noop_update_keeps_cache(self, engine):
        cached = engine.query(0)
        existing = next(iter(engine.graph.edges()))
        assert not engine.add_edge(*existing)  # already present
        assert engine.query(0) is cached

    def test_remove_edge_and_node(self, engine):
        u, v = next(iter(engine.graph.edges()))
        assert engine.remove_edge(u, v)
        assert not engine.graph.has_edge(u, v)
        removed = engine.remove_node(v)
        assert removed >= 0
        assert engine.graph.out_degree(v) == 0

    def test_updates_change_answers(self, ba_graph):
        engine = QueryEngine(ba_graph, seed=1)
        before = engine.query(0).estimates.copy()
        # Wire node 0 heavily into a far part of the graph.
        for target in range(200, 210):
            engine.add_edge(0, target, undirected=True)
        after = engine.query(0).estimates
        assert not np.allclose(before, after, atol=1e-4)

    def test_caller_graph_untouched(self, ba_graph):
        m_before = ba_graph.m
        engine = QueryEngine(ba_graph, seed=1)
        engine.add_edge(0, 299)
        assert ba_graph.m == m_before

    def test_custom_solver(self, ba_graph):
        from repro.baselines import fora

        engine = QueryEngine(
            ba_graph,
            solver=lambda g, s: fora(g, s, seed=s),
        )
        assert engine.query(0).algorithm == "fora"


def test_service_survives_growth():
    g = generators.ring(10)
    engine = QueryEngine(g, seed=0)
    engine.add_edge(9, 10, undirected=True)  # grows the node set
    assert engine.graph.n == 11
    result = engine.query(10)
    assert result.estimates.sum() == pytest.approx(1.0, abs=1e-9)
