"""The cross-run benchmark trend gate (``benchmarks/bench_trend.py``).

The comparator is pure file-in / exit-code-out, so the tests drive it
through ``main(argv)`` over temp directories laid out the way
``actions/download-artifact`` and ``gh run download`` materialize
artifacts (``<root>/<artifact-name>/<file>.json``).
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_trend",
    Path(__file__).resolve().parent.parent / "benchmarks" / "bench_trend.py",
)
bench_trend = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_trend)


def serving_doc(speedup, unique_speedup):
    return {"kind": "repro-serving-bench", "speedup": speedup,
            "unique_workload": {"speedup": unique_speedup}}


def http_doc(qps):
    return {"kind": "repro-http-bench", "qps": qps}


def write_run(root, docs):
    """``docs``: {artifact-name: doc}; mirrors the artifact layout."""
    for name, doc in docs.items():
        folder = Path(root) / name
        folder.mkdir(parents=True, exist_ok=True)
        (folder / f"{name.split('-')[0]}.json").write_text(
            json.dumps(doc), encoding="utf-8"
        )


def run(tmp_path, previous, current, *extra):
    write_run(tmp_path / "previous", previous)
    write_run(tmp_path / "current", current)
    return bench_trend.main([
        "--previous", str(tmp_path / "previous"),
        "--current", str(tmp_path / "current"), *extra,
    ])


def test_no_baseline_passes(tmp_path):
    (tmp_path / "previous").mkdir()
    write_run(tmp_path / "current", {"BENCH_http": http_doc(40.0)})
    assert bench_trend.main([
        "--previous", str(tmp_path / "previous"),
        "--current", str(tmp_path / "current"),
    ]) == 0


def test_within_threshold_passes(tmp_path):
    assert run(
        tmp_path,
        {"BENCH_serving": serving_doc(4.0, 1.0),
         "BENCH_http": http_doc(40.0)},
        {"BENCH_serving": serving_doc(3.6, 0.9),
         "BENCH_http": http_doc(36.0)},
    ) == 0


def test_regression_beyond_threshold_fails(tmp_path):
    assert run(
        tmp_path,
        {"BENCH_http": http_doc(40.0)},
        {"BENCH_http": http_doc(30.0)},  # -25% > 15% tolerance
    ) == 1


def test_nested_metric_regression_fails(tmp_path):
    assert run(
        tmp_path,
        {"BENCH_serving-multiproc": serving_doc(4.0, 2.5)},
        {"BENCH_serving-multiproc": serving_doc(4.2, 1.5)},
    ) == 1


def test_new_and_renamed_benchmarks_are_ignored(tmp_path):
    # Baseline has a document the current run dropped, and vice versa;
    # only the overlap is compared.
    assert run(
        tmp_path,
        {"BENCH_http": http_doc(40.0), "BENCH_old": http_doc(100.0)},
        {"BENCH_http": http_doc(41.0), "BENCH_new": http_doc(1.0)},
    ) == 0


def test_unknown_kind_and_garbage_files_are_skipped(tmp_path):
    write_run(tmp_path / "previous", {"BENCH_http": http_doc(40.0)})
    write_run(tmp_path / "current", {"BENCH_http": http_doc(40.0)})
    weird = tmp_path / "current" / "BENCH_weird"
    weird.mkdir()
    (weird / "BENCH_weird.json").write_text("{not json", encoding="utf-8")
    (weird / "BENCH_other.json").write_text(
        json.dumps({"kind": "unknown-kind", "speedup": 1.0}),
        encoding="utf-8",
    )
    assert bench_trend.main([
        "--previous", str(tmp_path / "previous"),
        "--current", str(tmp_path / "current"),
    ]) == 0


def test_summary_table_written(tmp_path, capsys):
    summary = tmp_path / "summary.md"
    assert run(
        tmp_path,
        {"BENCH_http": http_doc(40.0)},
        {"BENCH_http": http_doc(20.0)},
        "--summary", str(summary),
    ) == 1
    text = summary.read_text(encoding="utf-8")
    assert "| benchmark | metric |" in text
    assert "REGRESSED" in text
    out = capsys.readouterr()
    assert "BENCH_http" in out.out
    assert "regressed" in out.err


def test_threshold_is_validated(tmp_path):
    (tmp_path / "previous").mkdir()
    (tmp_path / "current").mkdir()
    assert bench_trend.main([
        "--previous", str(tmp_path / "previous"),
        "--current", str(tmp_path / "current"),
        "--threshold", "1.5",
    ]) == 2


def test_dig_helper():
    doc = {"a": {"b": {"c": 2.0}}, "x": 1}
    assert bench_trend.dig(doc, "a.b.c") == 2.0
    assert bench_trend.dig(doc, "x") == 1
    assert bench_trend.dig(doc, "a.missing") is None
    assert bench_trend.dig(doc, "x.y") is None


@pytest.mark.skipif(sys.platform == "win32", reason="posix paths in doc")
def test_compare_skips_nonpositive_and_missing_baselines():
    rows = bench_trend.compare(
        {"a": {"kind": "repro-http-bench", "qps": 0.0},
         "b": {"kind": "repro-http-bench"}},
        {"a": {"kind": "repro-http-bench", "qps": 10.0},
         "b": {"kind": "repro-http-bench", "qps": 10.0}},
        0.15,
    )
    assert rows == []
