"""CI guard: streaming ingestion really is bounded-memory.

Generates a 5M-line edge list, then loads it in two subprocesses that
run under a hard ``RLIMIT_DATA`` cap (anonymous memory only -- mmap
file pages are exempt, which is exactly the point of the ``.rcsr``
design):

* :func:`repro.graph.io.ingest_edge_list` must **succeed** under the
  cap and reproduce :func:`repro.graph.io.read_edge_list`'s digest;
* :func:`repro.graph.io.read_edge_list` must **fail** under the same
  cap (it materializes O(m) resident arrays), proving the cap is tight
  enough that passing it means something.

Run directly (``python tests/scale_capped_ingest.py``); exits non-zero
on any violation.  See docs/scale.md.
"""

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parents[1] / "src"
CAP_BYTES = 256 << 20
EDGES = 5_000_000
NODES = 500_000

_WORKER = r"""
import json
import resource
import sys

cap = int(sys.argv[1])
resource.setrlimit(resource.RLIMIT_DATA, (cap, cap))

from repro.graph.io import graph_digest, ingest_edge_list, read_edge_list

mode, src, out = sys.argv[2], sys.argv[3], sys.argv[4]
try:
    if mode == "stream":
        graph = ingest_edge_list(src, out)
    else:
        graph = read_edge_list(src)
except MemoryError:
    print(json.dumps({"mode": mode, "outcome": "MemoryError"}))
    raise SystemExit(0)
print(json.dumps({"mode": mode, "outcome": "ok", "n": graph.n,
                  "m": graph.m, "digest": graph_digest(graph)}))
"""


def run_capped(mode, src, out):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", _WORKER, str(CAP_BYTES), mode,
         str(src), str(out)],
        capture_output=True, text=True, env=env, check=False,
    )
    if proc.returncode != 0:
        # A MemoryError inside numpy internals can escalate to a
        # hard abort instead of the except branch; treat any non-zero
        # exit as the allocation failing.
        return {"mode": mode, "outcome": "MemoryError",
                "detail": proc.stderr.strip()[-200:]}
    return json.loads(proc.stdout)


def main():
    sys.path.insert(0, str(REPO_SRC))
    from repro.bench.harness import write_random_edges
    from repro.graph.io import graph_digest, load_mmap

    with tempfile.TemporaryDirectory() as tmp:
        src = Path(tmp) / "edges.txt"
        out = Path(tmp) / "graph.rcsr"
        print(f"generating {EDGES} edges over {NODES} nodes ...",
              flush=True)
        write_random_edges(src, nodes=NODES, edges=EDGES, seed=42)

        cap_mib = CAP_BYTES >> 20
        stream = run_capped("stream", src, out)
        print(f"stream under {cap_mib} MiB cap: {stream['outcome']}")
        if stream["outcome"] != "ok":
            print("FAIL: streaming ingestion ran out of memory under "
                  f"the {cap_mib} MiB anonymous-memory cap",
                  file=sys.stderr)
            return 1

        inram = run_capped("inram", src, out)
        print(f"in-RAM under {cap_mib} MiB cap: {inram['outcome']}")
        if inram["outcome"] != "MemoryError":
            print(f"FAIL: the {cap_mib} MiB cap no longer constrains "
                  "the in-RAM loader; tighten CAP_BYTES so this guard "
                  "keeps meaning something", file=sys.stderr)
            return 1

        # The capped ingest must have produced the real graph, not a
        # truncation: digest it against an uncapped mmap load.
        reloaded = load_mmap(out)
        if graph_digest(reloaded) != stream["digest"]:
            print("FAIL: capped ingest output digest mismatch",
                  file=sys.stderr)
            return 1
        print(f"ok: n={stream['n']} m={stream['m']} "
              f"digest={stream['digest'][:16]}...")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
