"""Tests for the edge-weighted RWR extension."""

import numpy as np
import pytest

from repro.errors import GraphFormatError, ParameterError
from repro.graph import generators
from repro.metrics.errors import guarantee_violation_rate
from repro.core import AccuracyParams
from repro.weighted import (
    WeightedCSRGraph,
    from_weighted_edges,
    uniform_weights,
    weighted_forward_push,
    weighted_init_state,
    weighted_power_iteration,
    weighted_ssrwr,
    weighted_walk_terminal_mass,
)

ALPHA = 0.2


@pytest.fixture
def wgraph():
    """A small weighted graph with skewed weights and an absorbing node."""
    return from_weighted_edges(5, [
        (0, 1, 3.0), (0, 2, 1.0),
        (1, 2, 2.0), (1, 3, 2.0),
        (2, 0, 1.0), (3, 4, 1.0),
        # node 4 has no out-edges: absorbing
    ])


def dense_truth(graph, source, alpha=ALPHA):
    """Exact weighted RWR by dense linear algebra (test oracle)."""
    n = graph.n
    p = np.zeros((n, n))
    sums = graph.weight_sums
    for v in range(n):
        if sums[v] > 0:
            p[v, graph.out_neighbors(v)] = graph.out_weights(v) / sums[v]
    system = np.eye(n) - (1 - alpha) * p.T
    unit = np.zeros(n)
    unit[source] = 1.0
    visits = np.linalg.solve(system, unit)
    absorb = np.where(sums > 0, alpha, 1.0)
    return absorb * visits


class TestWeightedGraph:
    def test_builder_accumulates_duplicates(self):
        g = from_weighted_edges(3, [(0, 1, 1.0), (0, 1, 2.0), (1, 2, 1.0)])
        assert g.m == 2
        assert g.out_weights(0)[0] == pytest.approx(3.0)

    def test_builder_drops_self_loops(self):
        g = from_weighted_edges(2, [(0, 0, 5.0), (0, 1, 1.0)])
        assert g.m == 1

    def test_builder_validation(self):
        with pytest.raises(GraphFormatError):
            from_weighted_edges(2, [(0, 5, 1.0)])
        with pytest.raises(GraphFormatError):
            from_weighted_edges(2, [(0, 1, -1.0)])

    def test_symmetrize(self):
        g = from_weighted_edges(2, [(0, 1, 2.5)], symmetrize=True)
        assert g.m == 2
        assert g.out_weights(1)[0] == pytest.approx(2.5)

    def test_weight_sums_and_absorbing(self, wgraph):
        assert wgraph.weight_sums[0] == pytest.approx(4.0)
        assert list(np.flatnonzero(wgraph.effectively_dangling)) == [4]

    def test_transition_row(self, wgraph):
        row = wgraph.transition_row(0)
        assert row.sum() == pytest.approx(1.0)
        assert row[0] == pytest.approx(0.75)  # weight 3 of 4 to node 1

    def test_zero_weight_node_is_absorbing(self):
        g = from_weighted_edges(3, [(0, 1, 0.0), (1, 2, 1.0)])
        assert bool(g.effectively_dangling[0])

    def test_weights_shape_validated(self):
        with pytest.raises(GraphFormatError):
            WeightedCSRGraph(2, np.array([0, 1, 1]), np.array([1]),
                             np.array([1.0, 2.0]))


class TestAliasTables:
    def test_sampling_distribution_matches_weights(self, wgraph, rng):
        prob, alias = wgraph.alias_tables()
        assert prob.shape == (wgraph.m,)
        # Sample neighbour of node 0 many times; expect 3:1 split.
        draws = 40_000
        base = wgraph.indptr[0]
        degree = wgraph.out_degree(0)
        slots = base + (rng.random(draws) * degree).astype(np.int64)
        accept = rng.random(draws) < prob[slots]
        chosen = np.where(accept, slots, alias[slots])
        picks = wgraph.indices[chosen]
        fraction_to_1 = (picks == 1).mean()
        assert fraction_to_1 == pytest.approx(0.75, abs=0.02)

    def test_uniform_weights_give_uniform_tables(self, ba_graph):
        wg = uniform_weights(ba_graph)
        prob, alias = wg.alias_tables()
        assert np.allclose(prob, 1.0)


class TestWeightedPush:
    def test_mass_conservation(self, wgraph):
        reserve, residue = weighted_init_state(wgraph, 0)
        weighted_forward_push(wgraph, reserve, residue, ALPHA, 1e-8)
        assert reserve.sum() + residue.sum() == pytest.approx(1.0,
                                                              abs=1e-12)

    def test_push_invariant_against_dense(self, wgraph):
        truth = [dense_truth(wgraph, v) for v in range(wgraph.n)]
        reserve, residue = weighted_init_state(wgraph, 0)
        weighted_forward_push(wgraph, reserve, residue, ALPHA, 1e-2)
        combined = reserve.copy()
        for v in np.flatnonzero(residue > 0):
            combined += residue[v] * truth[v]
        assert np.max(np.abs(combined - truth[0])) < 1e-12

    def test_converges_to_truth(self, wgraph):
        truth = dense_truth(wgraph, 0)
        reserve, residue = weighted_init_state(wgraph, 0)
        weighted_forward_push(wgraph, reserve, residue, ALPHA, 1e-13)
        assert np.max(np.abs(reserve - truth)) < 1e-9

    def test_validation(self, wgraph):
        reserve, residue = weighted_init_state(wgraph, 0)
        with pytest.raises(ParameterError):
            weighted_forward_push(wgraph, reserve, residue, 0.0, 1e-3)
        with pytest.raises(ParameterError):
            weighted_forward_push(wgraph, reserve, residue, ALPHA, 0.0)


class TestWeightedPower:
    def test_matches_dense(self, wgraph):
        for source in range(wgraph.n):
            result = weighted_power_iteration(wgraph, source, tol=1e-13)
            truth = dense_truth(wgraph, source)
            assert np.max(np.abs(result.estimates - truth)) < 1e-10

    def test_reduces_to_unweighted_on_uniform_weights(self, ba_graph):
        from repro.baselines import power_iteration

        wg = uniform_weights(ba_graph)
        weighted = weighted_power_iteration(wg, 0, tol=1e-13).estimates
        unweighted = power_iteration(ba_graph, 0, tol=1e-13).estimates
        assert np.max(np.abs(weighted - unweighted)) < 1e-10


class TestWeightedWalks:
    def test_terminal_distribution_matches_dense(self, wgraph, rng):
        truth = dense_truth(wgraph, 0)
        starts = np.zeros(60_000, dtype=np.int64)
        mass = weighted_walk_terminal_mass(wgraph, starts, ALPHA, rng)
        empirical = mass / starts.size
        assert np.max(np.abs(empirical - truth)) < 0.02

    def test_absorbing_start(self, wgraph, rng):
        starts = np.full(100, 4, dtype=np.int64)
        mass = weighted_walk_terminal_mass(wgraph, starts, ALPHA, rng)
        assert mass[4] == pytest.approx(100.0)


class TestWeightedSolver:
    def test_meets_contract(self, wgraph):
        accuracy = AccuracyParams(eps=0.5, delta=0.02, p_f=0.01)
        truth = dense_truth(wgraph, 0)
        result = weighted_ssrwr(wgraph, 0, accuracy=accuracy, seed=3)
        assert guarantee_violation_rate(truth, result.estimates,
                                        accuracy) == 0.0
        assert result.estimates.sum() == pytest.approx(1.0, abs=1e-9)

    def test_contract_on_random_weighted_graph(self):
        rng = np.random.default_rng(4)
        base = generators.preferential_attachment(120, 3, seed=4)
        triples = [(u, v, float(rng.uniform(0.1, 5.0)))
                   for u, v in base.edges()]
        wg = from_weighted_edges(base.n, triples)
        accuracy = AccuracyParams.paper_defaults(wg.n)
        truth = weighted_power_iteration(wg, 0, tol=1e-13).estimates
        result = weighted_ssrwr(wg, 0, accuracy=accuracy, seed=5)
        assert guarantee_violation_rate(truth, result.estimates,
                                        accuracy) == 0.0

    def test_matches_unweighted_pipeline_on_uniform(self, ba_graph):
        from repro.baselines import fora

        wg = uniform_weights(ba_graph)
        accuracy = AccuracyParams.paper_defaults(ba_graph.n)
        weighted = weighted_ssrwr(wg, 0, accuracy=accuracy, seed=1)
        unweighted = fora(ba_graph, 0, accuracy=accuracy, seed=1)
        # Same accuracy class: both track the same truth closely.
        assert np.max(np.abs(weighted.estimates
                             - unweighted.estimates)) < 0.05

    def test_source_validation(self, wgraph):
        with pytest.raises(ParameterError):
            weighted_ssrwr(wgraph, 99)


class TestWeightedPPR:
    def test_point_mass_matches_weighted_ssrwr_truth(self, wgraph):
        from repro.weighted import weighted_personalized_pagerank

        accuracy = AccuracyParams(eps=0.5, delta=0.02, p_f=0.01)
        truth = dense_truth(wgraph, 0)
        result = weighted_personalized_pagerank(wgraph, [0],
                                                accuracy=accuracy, seed=2)
        assert guarantee_violation_rate(truth, result.estimates,
                                        accuracy) == 0.0

    def test_linearity_over_preference(self, wgraph):
        from repro.weighted import weighted_personalized_pagerank

        accuracy = AccuracyParams(eps=1.0, delta=0.05, p_f=0.2)
        expected = 0.5 * dense_truth(wgraph, 0) + 0.5 * dense_truth(wgraph, 1)
        total = np.zeros(wgraph.n)
        trials = 30
        for seed in range(trials):
            total += weighted_personalized_pagerank(
                wgraph, {0: 1.0, 1: 1.0}, accuracy=accuracy, seed=seed
            ).estimates
        assert np.max(np.abs(total / trials - expected)) < 0.03

    def test_support_reported(self, wgraph):
        from repro.weighted import weighted_personalized_pagerank

        result = weighted_personalized_pagerank(wgraph, [0, 1, 2], seed=0)
        assert result.extras["support"] == 3
        assert result.algorithm == "weighted-ppr"
