"""Tests for graph builders, serialization and mutation helpers."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    add_edges,
    delete_edges,
    delete_nodes,
    from_adjacency,
    from_edges,
    graph_digest,
    induced_subgraph,
    load_npz,
    read_edge_list,
    rewire_random_edges,
    save_npz,
    write_edge_list,
)


class TestBuilders:
    def test_from_adjacency_list(self):
        g = from_adjacency([[1, 2], [2], []])
        assert g.m == 3
        assert g.has_edge(0, 2)

    def test_from_adjacency_dict(self):
        g = from_adjacency({0: [1], 2: [0]})
        assert g.n == 3
        assert g.has_edge(2, 0)

    def test_networkx_roundtrip(self):
        nx = pytest.importorskip("networkx")
        from repro.graph import from_networkx, to_networkx

        src = nx.DiGraph([(0, 1), (1, 2), (2, 0)])
        g, mapping = from_networkx(src)
        assert g.m == 3
        assert mapping == {0: 0, 1: 1, 2: 2}
        back = to_networkx(g)
        assert sorted(back.edges()) == sorted(src.edges())

    def test_networkx_undirected_symmetrizes(self):
        nx = pytest.importorskip("networkx")
        from repro.graph import from_networkx

        g, _ = from_networkx(nx.Graph([(0, 1)]))
        assert g.m == 2

    def test_induced_subgraph(self, tiny_graph):
        sub, mapping = induced_subgraph(tiny_graph, [0, 1, 2])
        assert sub.n == 3
        assert list(mapping) == [0, 1, 2]
        # The 3-cycle survives; edges to 3/4 are cut.
        assert sub.m == 3
        assert sub.has_edge(2, 0)

    def test_induced_subgraph_out_of_range(self, tiny_graph):
        with pytest.raises(GraphFormatError):
            induced_subgraph(tiny_graph, [99])


class TestIO:
    def test_edge_list_roundtrip(self, tmp_path, ba_graph):
        path = tmp_path / "graph.txt"
        write_edge_list(ba_graph, path)
        loaded = read_edge_list(path, n=ba_graph.n)
        assert loaded == ba_graph

    def test_edge_list_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.n == 3
        assert g.m == 2

    def test_edge_list_malformed(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_edge_list_non_integer(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_npz_roundtrip(self, tmp_path, web_graph):
        path = tmp_path / "graph.npz"
        save_npz(web_graph, path)
        loaded = load_npz(path)
        assert loaded == web_graph
        assert loaded.dangling == web_graph.dangling

    def test_digest_stable_and_distinguishing(self, ba_graph):
        assert graph_digest(ba_graph) == graph_digest(ba_graph)
        other = from_edges(ba_graph.n, list(ba_graph.edges())[:-1])
        assert graph_digest(other) != graph_digest(ba_graph)


class TestDynamic:
    def test_delete_nodes_keeps_ids(self, tiny_graph):
        g = delete_nodes(tiny_graph, [1])
        assert g.n == tiny_graph.n
        assert g.out_degree(1) == 0
        assert not g.has_edge(0, 1)
        assert g.has_edge(2, 0)

    def test_delete_nodes_relabel(self, tiny_graph):
        g, survivors = delete_nodes(tiny_graph, [5], relabel=True)
        assert g.n == 5
        assert list(survivors) == [0, 1, 2, 3, 4]

    def test_delete_edges(self, tiny_graph):
        g = delete_edges(tiny_graph, [(0, 1), (9, 9)])
        assert g.m == tiny_graph.m - 1
        assert not g.has_edge(0, 1)

    def test_add_edges(self, tiny_graph):
        g = add_edges(tiny_graph, [(5, 0)])
        assert g.has_edge(5, 0)
        assert g.m == tiny_graph.m + 1

    def test_add_edges_grow(self, tiny_graph):
        with pytest.raises(GraphFormatError):
            add_edges(tiny_graph, [(0, 10)])
        g = add_edges(tiny_graph, [(0, 10)], grow=True)
        assert g.n == 11

    def test_rewire_preserves_count_bound(self, ba_graph):
        g = rewire_random_edges(ba_graph, 50, seed=3)
        assert g.n == ba_graph.n
        # Rewiring can only lose edges to dedup/self-loop removal.
        assert g.m <= ba_graph.m
        assert g.m >= ba_graph.m - 50

    def test_delete_out_of_range(self, tiny_graph):
        with pytest.raises(GraphFormatError):
            delete_nodes(tiny_graph, [42])


def test_deterministic_rebuild(tiny_graph):
    rebuilt = from_edges(tiny_graph.n, list(tiny_graph.edges()))
    assert rebuilt == tiny_graph
    assert np.array_equal(rebuilt.indptr, tiny_graph.indptr)
