"""API-surface quality gates.

* every public item reachable from the package's ``__all__`` chains has
  a docstring;
* ``__all__`` lists are sorted and truthful (every name resolves);
* the top-level package re-exports what the README promises.
"""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.analysis",
    "repro.baselines",
    "repro.bench",
    "repro.community",
    "repro.core",
    "repro.datasets",
    "repro.graph",
    "repro.metrics",
    "repro.obs",
    "repro.push",
    "repro.walks",
    "repro.weighted",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_entries_resolve_and_are_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    exported = getattr(module, "__all__", None)
    assert exported is not None, f"{module_name} lacks __all__"
    for name in exported:
        obj = getattr(module, name, None)
        assert obj is not None, f"{module_name}.{name} does not resolve"
        if inspect.ismodule(obj):
            continue
        assert getattr(obj, "__doc__", None), \
            f"{module_name}.{name} lacks a docstring"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_lists_sorted(module_name):
    module = importlib.import_module(module_name)
    exported = list(module.__all__)
    assert exported == sorted(exported), \
        f"{module_name}.__all__ is not sorted"


def test_public_classes_document_their_methods():
    from repro.baselines import (
        BePIIndex,
        BLinIndex,
        ForaPlusIndex,
        HubPPRIndex,
        QRIndex,
        TPAIndex,
    )
    from repro.service import QueryEngine

    for cls in (BePIIndex, BLinIndex, ForaPlusIndex, HubPPRIndex,
                QRIndex, TPAIndex, QueryEngine):
        for name, member in inspect.getmembers(cls):
            if name.startswith("_") or not callable(member):
                continue
            assert member.__doc__, f"{cls.__name__}.{name} lacks a docstring"


def test_readme_promises_importables():
    import repro

    for name in ("resacc", "msrwr", "AccuracyParams", "ResAccParams",
                 "SSRWRResult", "QueryEngine", "datasets", "from_edges"):
        assert hasattr(repro, name)


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)
