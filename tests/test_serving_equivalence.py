"""Sequential ≡ parallel equivalence: the serving determinism contract.

``ConcurrentQueryEngine.query_batch`` must produce estimate vectors that
are *byte-identical* to a sequential loop over ``QueryEngine.query`` for
fixed seeds -- regardless of worker count, thread scheduling, or
duplicate requests.  This is what makes the concurrent path trustworthy:
every accuracy statement proven for the sequential solver transfers
verbatim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AccuracyParams
from repro.graph import generators
from repro.service import QueryEngine
from repro.serving import ConcurrentQueryEngine

GRAPHS = {
    "ba": lambda: generators.preferential_attachment(300, 3, seed=7),
    "power_law": lambda: generators.directed_power_law(250, 5, seed=11),
    "sbm": lambda: generators.stochastic_block_model(
        [60, 60, 60], 0.08, 0.01, seed=5
    ),
    "grid": lambda: generators.grid(12, 12, torus=True),
}

ACCURACIES = {
    "paper": lambda n: AccuracyParams.paper_defaults(n),
    "loose-delta": lambda n: AccuracyParams(eps=0.5, delta=10.0 / n,
                                            p_f=1.0 / n),
    "tight-eps": lambda n: AccuracyParams(eps=0.25, delta=5.0 / n,
                                          p_f=1.0 / n),
}


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("accuracy_name", sorted(ACCURACIES))
def test_batched_equals_sequential_bytes(graph_name, accuracy_name):
    graph = GRAPHS[graph_name]()
    accuracy = ACCURACIES[accuracy_name](graph.n)
    sources = [0, 3, 17, 42, 3, 0, 99, 17]  # duplicates on purpose
    sequential = QueryEngine(graph, accuracy=accuracy, cache_size=0,
                             seed=9)
    expected = [sequential.query(s) for s in sources]
    with ConcurrentQueryEngine(graph, accuracy=accuracy, seed=9,
                               max_workers=4) as engine:
        batched = engine.query_batch(sources)
    assert len(batched) == len(sources)
    for source, want, got in zip(sources, expected, batched):
        assert got.source == source
        assert want.estimates.tobytes() == got.estimates.tobytes(), (
            f"{graph_name}/{accuracy_name}: batched estimates for source "
            f"{source} diverge from the sequential loop"
        )


def test_batch_results_in_input_order():
    graph = GRAPHS["ba"]()
    sources = [250, 1, 123, 7, 1, 250]
    with ConcurrentQueryEngine(graph, seed=2, max_workers=4) as engine:
        results = engine.query_batch(sources)
    assert [r.source for r in results] == sources
    # Duplicate positions share one computation (and one object).
    assert results[0] is results[5]
    assert results[1] is results[4]


def test_repeat_runs_are_reproducible():
    """Same engine seed, fresh engines: byte-identical batches."""
    graph = GRAPHS["power_law"]()
    sources = [5, 80, 5, 33]
    outputs = []
    for _ in range(2):
        with ConcurrentQueryEngine(graph, seed=4, max_workers=3) as eng:
            outputs.append(eng.query_batch(sources))
    for first, second in zip(*outputs):
        assert first.estimates.tobytes() == second.estimates.tobytes()


def test_worker_count_does_not_change_answers():
    graph = GRAPHS["sbm"]()
    accuracy = AccuracyParams.paper_defaults(graph.n)
    sources = list(range(0, 40, 5))
    reference = None
    for workers in (1, 2, 8):
        with ConcurrentQueryEngine(graph, accuracy=accuracy, seed=6,
                                   max_workers=workers) as engine:
            got = [r.estimates for r in engine.query_batch(sources)]
        if reference is None:
            reference = got
        else:
            for want, have in zip(reference, got):
                assert np.array_equal(want, have)


def test_http_round_trip_matches_sequential_float64():
    """The whole network path preserves the determinism contract.

    JSON encodes floats via ``repr`` (shortest round-trip string), so
    estimates decoded from the HTTP body and re-packed as float64 must
    be byte-identical to the sequential loop -- the acceptance bar for
    serving over the wire.
    """
    from repro.server import ServerClient, ServerConfig, start_in_thread

    graph = GRAPHS["ba"]()
    accuracy = ACCURACIES["loose-delta"](graph.n)
    sources = [0, 3, 17, 42, 3, 0, 99, 17]
    sequential = QueryEngine(graph, accuracy=accuracy, cache_size=0,
                             seed=9)
    expected = [sequential.query(s) for s in sources]
    engine = ConcurrentQueryEngine(graph, accuracy=accuracy, seed=9,
                                   max_workers=4)
    with start_in_thread(engine, ServerConfig(port=0)) as handle:
        with ServerClient(base_url=handle.url) as client:
            doc = client.query_batch(sources)
    assert doc["errors"] == {}
    for source, want, item in zip(sources, expected, doc["results"]):
        assert item["source"] == source
        got = np.asarray(item["estimates"], dtype=np.float64)
        assert want.estimates.tobytes() == got.tobytes(), (
            f"HTTP estimates for source {source} diverge from the "
            f"sequential loop after the JSON round-trip"
        )


def test_accuracy_override_matches_sequential():
    graph = GRAPHS["ba"]()
    tight = AccuracyParams(eps=0.25, delta=5.0 / graph.n,
                           p_f=1.0 / graph.n)
    sequential = QueryEngine(graph, cache_size=0, seed=3)
    expected = sequential.query(12, accuracy=tight)
    with ConcurrentQueryEngine(graph, seed=3, max_workers=2) as engine:
        got = engine.query_batch([12], accuracy=tight)[0]
    assert expected.estimates.tobytes() == got.estimates.tobytes()


# ----------------------------------------------------------------------
# Top-k answers: one deterministic contract across every engine
# ----------------------------------------------------------------------
def _answers_equal(want, got):
    assert want.nodes.tobytes() == got.nodes.tobytes()
    assert want.values.tobytes() == got.values.tobytes()
    assert want.separated == got.separated
    assert want.path == got.path


@pytest.mark.parametrize("graph_name", ("ba", "grid"))
def test_topk_identical_across_all_engines(graph_name):
    """QueryEngine, ConcurrentQueryEngine and MultiProcessQueryEngine
    return byte-identical top-k answers for the same seed -- the fast
    path's early termination must not depend on where it runs."""
    from repro.serving import MultiProcessQueryEngine

    graph = GRAPHS[graph_name]()
    accuracy = ACCURACIES["tight-eps"](graph.n)
    sources = [0, 7, 42]
    reference = QueryEngine(graph, accuracy=accuracy, seed=9)
    expected = [reference.top_k(s, 5) for s in sources]
    with ConcurrentQueryEngine(graph, accuracy=accuracy, seed=9,
                               max_workers=4) as threads:
        for source, want in zip(sources, expected):
            _answers_equal(want, threads.top_k(source, 5))
    with MultiProcessQueryEngine(graph, accuracy=accuracy, seed=9,
                                 solver_workers=2) as procs:
        for source, want in zip(sources, expected):
            _answers_equal(want, procs.top_k(source, 5))


def test_topk_worker_count_does_not_change_answers():
    graph = GRAPHS["power_law"]()
    accuracy = ACCURACIES["loose-delta"](graph.n)
    reference = None
    for workers in (1, 4):
        with ConcurrentQueryEngine(graph, accuracy=accuracy, seed=6,
                                   max_workers=workers) as engine:
            got = [engine.top_k(s, 8) for s in (2, 30, 77)]
        if reference is None:
            reference = got
        else:
            for want, have in zip(reference, got):
                _answers_equal(want, have)


def test_topk_tie_break_is_stable_across_runs():
    """Exact ties (edgeless graph: every non-source score is 0.0) are
    listed by ascending node id, byte-stable across fresh engines."""
    from repro.graph import from_edges

    graph = from_edges(40, [])
    outputs = []
    for _ in range(2):
        with ConcurrentQueryEngine(graph, seed=4, max_workers=3) as eng:
            outputs.append(eng.top_k(11, 6))
    first, second = outputs
    _answers_equal(first, second)
    assert first.nodes[0] == 11
    assert first.nodes[1:].tolist() == [0, 1, 2, 3, 4]


# ----------------------------------------------------------------------
# PowerPush blocked batches: byte-identical to the per-source loop
# ----------------------------------------------------------------------
@pytest.mark.parametrize("graph_name", ("ba", "power_law", "grid"))
@pytest.mark.parametrize("accuracy_name", sorted(ACCURACIES))
def test_powerpush_blocked_batch_equals_solo_loop(graph_name,
                                                  accuracy_name):
    """A cold ``query_batch`` on a PowerPush engine is solved as one
    blocked multi-source sweep; its answers must be byte-identical to a
    sequential loop of solo PowerPush queries (which run the same kernel
    at block width 1)."""
    graph = GRAPHS[graph_name]()
    accuracy = ACCURACIES[accuracy_name](graph.n)
    sources = [0, 3, 17, 42, 3, 0, 99, 17]  # duplicates on purpose
    solo = QueryEngine(graph, solver="powerpush", accuracy=accuracy,
                       cache_size=0)
    expected = [solo.query(s) for s in sources]
    with ConcurrentQueryEngine(graph, solver="powerpush",
                               accuracy=accuracy,
                               max_workers=4) as engine:
        batched = engine.query_batch(sources)
    assert len(batched) == len(sources)
    for source, want, got in zip(sources, expected, batched):
        assert got.source == source
        assert got.algorithm == "powerpush"
        assert want.estimates.tobytes() == got.estimates.tobytes(), (
            f"{graph_name}/{accuracy_name}: blocked estimates for source "
            f"{source} diverge from the solo loop"
        )


def test_powerpush_blocked_batch_is_one_solver_call():
    """The whole cold unique-source batch costs exactly one blocked
    solve (that is the perf point), and each unique source is a cache
    miss under its own ``(source, accuracy)`` key."""
    graph = GRAPHS["ba"]()
    sources = [2, 9, 33, 150]
    with ConcurrentQueryEngine(graph, solver="powerpush",
                               max_workers=4) as engine:
        engine.query_batch(sources)
        assert engine.stats.solver_calls == 1
        assert engine.stats.cache_misses == len(sources)
        # Second round: everything is served from the cache.
        engine.query_batch(sources)
        assert engine.stats.solver_calls == 1
        assert engine.stats.cache_hits == len(sources)


def test_powerpush_blocked_batch_collect_mode():
    """One invalid source in a block degrades that item only; every
    valid item is still byte-identical to a solo solve (the
    ``on_error="collect"`` contract is solver-independent)."""
    graph = GRAPHS["ba"]()
    bad = graph.n + 5
    sources = [1, bad, 2, 1]
    solo = QueryEngine(graph, solver="powerpush", cache_size=0)
    with ConcurrentQueryEngine(graph, solver="powerpush",
                               max_workers=2) as engine:
        outcome = engine.query_batch(sources, on_error="collect")
    assert list(outcome.errors) == [bad]
    assert "out of range" in outcome.errors[bad]
    assert outcome.results[1] is None
    assert outcome.results[3] is outcome.results[0]  # shared duplicate
    for index in (0, 2):
        want = solo.query(sources[index])
        assert (outcome.results[index].estimates.tobytes()
                == want.estimates.tobytes())


def test_powerpush_blocked_identical_across_all_engines():
    """Threaded and multi-process engines answer a PowerPush batch with
    the same bytes as the sequential engine -- the solve placement
    (inline block, pool-worker block) must not matter."""
    from repro.serving import MultiProcessQueryEngine

    graph = GRAPHS["ba"]()
    sources = [0, 7, 42, 7, 150]
    solo = QueryEngine(graph, solver="powerpush", cache_size=0)
    expected = [solo.query(s) for s in sources]
    with ConcurrentQueryEngine(graph, solver="powerpush",
                               max_workers=3) as threads:
        for want, have in zip(expected, threads.query_batch(sources)):
            assert want.estimates.tobytes() == have.estimates.tobytes()
    with MultiProcessQueryEngine(graph, solver="powerpush",
                                 solver_workers=2) as procs:
        for want, have in zip(expected, procs.query_batch(sources)):
            assert want.estimates.tobytes() == have.estimates.tobytes()


def test_topk_cache_hits_preserve_bytes():
    graph = GRAPHS["ba"]()
    accuracy = ACCURACIES["tight-eps"](graph.n)
    with ConcurrentQueryEngine(graph, accuracy=accuracy, seed=9,
                               max_workers=2) as engine:
        cold = engine.top_k(17, 5)
        hot = engine.top_k(17, 5)
        assert hot is cold          # served from the result cache
        assert engine.stats.cache_hits >= 1
