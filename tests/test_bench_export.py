"""Tests for JSON/CSV artefact export."""

import csv
import json
import math

import pytest

from repro.bench.export import (
    artifact_to_dict,
    export_csv,
    export_json,
    load_json,
)
from repro.bench.report import Series, Table
from repro.errors import ParameterError


@pytest.fixture
def table():
    t = Table(title="T", headers=["name", "value"])
    t.add_row("a", 1.5)
    t.add_row("b", "o.o.m")
    t.add_note("a note")
    return t


@pytest.fixture
def series():
    s = Series(title="S", x_label="k", x_values=[1, 10])
    s.add_line("algo", [0.5, 0.25])
    return s


class TestDictConversion:
    def test_table(self, table):
        data = artifact_to_dict(table)
        assert data["kind"] == "table"
        assert data["rows"] == [["a", 1.5], ["b", "o.o.m"]]
        assert data["notes"] == ["a note"]

    def test_series(self, series):
        data = artifact_to_dict(series)
        assert data["kind"] == "series"
        assert data["lines"]["algo"] == [0.5, 0.25]

    def test_non_finite_values(self):
        t = Table(title="T", headers=["x"])
        t.add_row(float("nan"))
        t.add_row(float("inf"))
        data = artifact_to_dict(t)
        assert data["rows"][0] == [None]
        assert data["rows"][1] == ["inf"]

    def test_numpy_scalars(self):
        import numpy as np

        t = Table(title="T", headers=["x"])
        t.add_row(np.float64(0.5))
        t.add_row(np.int64(3))
        data = artifact_to_dict(t)
        assert data["rows"] == [[0.5], [3]]
        json.dumps(data)  # must be serializable

    def test_unknown_artifact(self):
        with pytest.raises(ParameterError):
            artifact_to_dict(object())


class TestFiles:
    def test_json_roundtrip(self, tmp_path, table, series):
        path = export_json([table, series], tmp_path / "out.json",
                           experiment="t3")
        doc = load_json(path)
        assert doc["experiment"] == "t3"
        assert len(doc["artifacts"]) == 2
        assert doc["artifacts"][0]["title"] == "T"

    def test_csv_table(self, tmp_path, table):
        path = export_csv(table, tmp_path / "t.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["name", "value"]
        assert rows[1] == ["a", "1.5"]

    def test_csv_series(self, tmp_path, series):
        path = export_csv(series, tmp_path / "s.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["k", "algo"]
        assert rows[2] == ["10", "0.25"]


class TestCLIJson:
    def test_run_with_json(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "fig1.json"
        assert main(["run", "fig1", "--fast", "--json", str(target)]) == 0
        doc = load_json(target)
        assert doc["experiment"] == "fig1"
        assert not math.isnan(
            doc["artifacts"][0]["rows"][0][1]
        )
