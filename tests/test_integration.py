"""Cross-module integration tests.

Each test exercises a full pipeline the way a downstream user would:
dataset -> solver -> metrics, or dataset -> experiment -> report.
"""

import numpy as np
import pytest

from repro import datasets, msrwr, resacc
from repro.baselines import (
    ExactSolver,
    ForaPlusIndex,
    TPAIndex,
    fora,
    monte_carlo,
    power_iteration,
)
from repro.bench import BenchConfig
from repro.bench.appendix import run_fig3, run_fig24, run_table5
from repro.bench.experiments import run_table2, run_table7
from repro.core import AccuracyParams, ResAccParams
from repro.graph import delete_nodes
from repro.metrics import abs_error_at_kth, ndcg_at_k


@pytest.fixture(scope="module")
def dblp():
    return datasets.load("dblp", scale=0.2, seed=0)


@pytest.fixture(scope="module")
def dblp_truth(dblp):
    return ExactSolver(dblp).query(0).estimates


class TestQuickstartPipeline:
    def test_resacc_on_catalog_graph(self, dblp, dblp_truth):
        accuracy = AccuracyParams.paper_defaults(dblp.n)
        result = resacc(dblp, 0, accuracy=accuracy, seed=1)
        errors = abs_error_at_kth(dblp_truth, result.estimates,
                                  ks=(1, 10, 100))
        assert errors[1] < 0.05
        assert ndcg_at_k(dblp_truth, result.estimates, 100) > 0.95

    def test_all_solvers_agree_on_top_node(self, dblp, dblp_truth):
        top_true = int(np.argmax(dblp_truth))
        accuracy = AccuracyParams.paper_defaults(dblp.n)
        for result in (
            resacc(dblp, 0, accuracy=accuracy, seed=2),
            fora(dblp, 0, accuracy=accuracy, seed=2),
            monte_carlo(dblp, 0, accuracy=accuracy, seed=2),
            power_iteration(dblp, 0),
        ):
            assert int(np.argmax(result.estimates)) == top_true

    def test_msrwr_over_catalog(self, dblp):
        accuracy = AccuracyParams.paper_defaults(dblp.n)
        solver = lambda g, s: resacc(g, s, accuracy=accuracy,  # noqa: E731
                                     seed=s)
        result = msrwr(dblp, [0, 3, 9], solver)
        assert result.matrix.shape == (3, dblp.n)
        row_sums = result.matrix.sum(axis=1)
        assert np.allclose(row_sums, 1.0, atol=1e-9)


class TestIndexLifecycles:
    def test_foraplus_survives_graph_update(self, dblp):
        accuracy = AccuracyParams.paper_defaults(dblp.n)
        index = ForaPlusIndex(dblp, accuracy=accuracy, seed=0)
        before = index.query(0).estimates
        updated = delete_nodes(dblp, [dblp.n - 1])
        rebuilt = ForaPlusIndex(updated, accuracy=accuracy, seed=0)
        after = rebuilt.query(0).estimates
        # Both are valid distributions on their own graphs.
        assert before.sum() == pytest.approx(1.0, abs=0.02)
        assert after.sum() == pytest.approx(1.0, abs=0.02)

    def test_tpa_index_reused_across_sources(self, dblp):
        index = TPAIndex(dblp)
        for source in (0, 5, 11):
            result = index.query(source)
            assert result.estimates.sum() == pytest.approx(1.0, abs=1e-9)


class TestExperimentEndToEnd:
    @pytest.fixture
    def cfg(self):
        return BenchConfig(scale=0.15, num_sources=2, delta_scale=50.0,
                           fast=True)

    def test_table2(self, cfg):
        [table] = run_table2(cfg)
        assert len(table.rows) == 7
        assert table.headers[0] == "dataset"

    def test_table7_percentages_sum(self, cfg):
        [table] = run_table7(cfg)
        for row in table.rows:
            assert sum(row[-3:]) == pytest.approx(100.0, abs=0.5)

    def test_fig3_matches_paper_numbers(self):
        series, closed_form = run_fig3()
        line = series.lines["residue at s after round"]
        assert line[0] == pytest.approx(0.512)
        assert line[1] == pytest.approx(0.262144)

    def test_fig24_has_all_variants(self, cfg):
        [table] = run_fig24(cfg)
        assert table.headers == ["dataset", "ResAcc", "No-Loop", "No-SG",
                                 "No-OFD"]
        assert len(table.rows) == 3

    def test_table5_ssrwr_helps(self, cfg):
        [table] = run_table5(cfg)
        # Rows alternate with/without; SSRWR ordering should not be much
        # worse than BFS ordering on either dataset.
        values = table.column("avg conductance")
        for with_ssrwr, without in zip(values[::2], values[1::2]):
            assert with_ssrwr <= without * 1.5 + 0.05


class TestDanglingPolicyConsistency:
    def test_absorb_and_restart_disagree_when_dangling_exists(self):
        from repro.graph import generators

        g = generators.path(5)
        absorb = power_iteration(g, 0).estimates
        restart = power_iteration(g.with_dangling("restart"), 0).estimates
        assert not np.allclose(absorb, restart)

    def test_policies_agree_without_dangling(self):
        from repro.graph import generators

        g = generators.ring(7)
        absorb = power_iteration(g, 0).estimates
        restart = power_iteration(g.with_dangling("restart"), 0).estimates
        assert np.allclose(absorb, restart, atol=1e-10)

    def test_resacc_restart_policy_end_to_end(self):
        from repro.graph import generators

        g = generators.directed_power_law(150, 4, seed=2)
        g_restart = g.with_dangling("restart")
        truth = power_iteration(g_restart, 0, tol=1e-13).estimates
        accuracy = AccuracyParams.paper_defaults(g.n)
        result = resacc(g_restart, 0, accuracy=accuracy,
                        params=ResAccParams(h=1), seed=3)
        from repro.metrics.errors import guarantee_violation_rate

        assert guarantee_violation_rate(truth, result.estimates,
                                        accuracy) == 0.0
