"""Tests for the accuracy, ranking and distribution metrics."""

import numpy as np
import pytest

from repro.core import AccuracyParams
from repro.errors import ParameterError
from repro.metrics import (
    abs_error_at_kth,
    boxplot_summary,
    dcg,
    error_bar_summary,
    guarantee_satisfied,
    guarantee_violation_rate,
    kendall_tau_top_k,
    max_abs_error,
    max_relative_error,
    mean_abs_error,
    ndcg_at_k,
    precision_at_k,
)


class TestErrorMetrics:
    def test_abs_error_at_kth(self):
        truth = np.array([0.5, 0.3, 0.15, 0.05])
        est = np.array([0.5, 0.25, 0.15, 0.10])
        errors = abs_error_at_kth(truth, est, ks=(1, 2, 3, 4))
        assert errors[1] == pytest.approx(0.0)
        assert errors[2] == pytest.approx(0.05)
        assert errors[3] == pytest.approx(0.0)
        assert errors[4] == pytest.approx(0.05)

    def test_abs_error_k_clamped(self):
        truth = np.array([0.6, 0.4])
        errors = abs_error_at_kth(truth, truth, ks=(100,))
        assert errors[100] == 0.0

    def test_abs_error_invalid_k(self):
        with pytest.raises(ParameterError):
            abs_error_at_kth(np.ones(3), np.ones(3), ks=(0,))

    def test_mean_and_max(self):
        truth = np.array([0.5, 0.5])
        est = np.array([0.4, 0.5])
        assert mean_abs_error(truth, est) == pytest.approx(0.05)
        assert max_abs_error(truth, est) == pytest.approx(0.1)

    def test_shape_mismatch(self):
        with pytest.raises(ParameterError):
            mean_abs_error(np.ones(3), np.ones(4))

    def test_max_relative_error_ignores_insignificant(self):
        truth = np.array([0.5, 0.001])
        est = np.array([0.5, 0.5])  # wildly wrong but below delta
        assert max_relative_error(truth, est, delta=0.01) == 0.0

    def test_guarantee_helpers(self):
        acc = AccuracyParams(eps=0.5, delta=0.01, p_f=0.01)
        truth = np.array([0.6, 0.4])
        good = np.array([0.5, 0.5])
        bad = np.array([0.05, 0.95])
        assert guarantee_satisfied(truth, good, acc)
        assert not guarantee_satisfied(truth, bad, acc)
        assert guarantee_violation_rate(truth, bad, acc) == 1.0
        assert guarantee_violation_rate(truth, good, acc) == 0.0

    def test_violation_rate_empty_significant_set(self):
        acc = AccuracyParams(eps=0.5, delta=0.99, p_f=0.01)
        assert guarantee_violation_rate(
            np.array([0.5, 0.5]), np.array([0.0, 0.0]), acc) == 0.0


class TestRankingMetrics:
    def test_dcg_simple(self):
        assert dcg([1.0]) == pytest.approx(1.0)
        assert dcg([1.0, 1.0]) == pytest.approx(1.0 + 1.0 / np.log2(3))
        assert dcg([]) == 0.0

    def test_perfect_ranking_is_one(self, rng):
        truth = rng.random(50)
        assert ndcg_at_k(truth, truth * 3.0, 10) == pytest.approx(1.0)

    def test_ndcg_in_unit_interval(self, rng):
        truth = rng.random(50)
        est = rng.random(50)
        value = ndcg_at_k(truth, est, 20)
        assert 0.0 <= value <= 1.0

    def test_bad_ranking_below_one(self):
        truth = np.array([1.0, 0.5, 0.25, 0.0])
        worst = -truth
        assert ndcg_at_k(truth, worst, 4) < 1.0

    def test_zero_truth_vacuous(self):
        assert ndcg_at_k(np.zeros(5), np.ones(5), 3) == 1.0

    def test_ndcg_validation(self):
        with pytest.raises(ParameterError):
            ndcg_at_k(np.ones(3), np.ones(3), 0)
        with pytest.raises(ParameterError):
            ndcg_at_k(np.ones(3), np.ones(4), 2)

    def test_precision(self):
        truth = np.array([0.9, 0.8, 0.1, 0.0])
        est = np.array([0.9, 0.0, 0.8, 0.1])
        assert precision_at_k(truth, truth, 2) == 1.0
        assert precision_at_k(truth, est, 2) == pytest.approx(0.5)

    def test_kendall_tau(self):
        truth = np.array([0.9, 0.5, 0.3, 0.1])
        assert kendall_tau_top_k(truth, truth, 4) == 1.0
        assert kendall_tau_top_k(truth, -truth, 4) == -1.0
        assert kendall_tau_top_k(truth, np.zeros(4), 4) == 1.0  # all ties


class TestDistributionSummaries:
    def test_boxplot(self):
        summary = boxplot_summary([1, 2, 3, 4, 5])
        assert summary.minimum == 1
        assert summary.median == 3
        assert summary.maximum == 5
        assert summary.iqr == pytest.approx(2.0)
        assert len(summary.as_row()) == 5

    def test_error_bar(self):
        summary = error_bar_summary([2.0, 4.0])
        assert summary.mean == pytest.approx(3.0)
        assert summary.std == pytest.approx(1.0)

    def test_empty_sample(self):
        with pytest.raises(ParameterError):
            boxplot_summary([])
        with pytest.raises(ParameterError):
            error_bar_summary([])

    def test_non_finite_sample(self):
        with pytest.raises(ParameterError):
            boxplot_summary([1.0, float("nan")])
