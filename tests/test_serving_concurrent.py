"""Concurrency stress harness for the serving layer.

These tests hammer :class:`repro.serving.ConcurrentQueryEngine` (and its
building blocks) with racing readers and writers and assert the
contracts that make it a *service*:

* no deadlock -- every join has a hard timeout;
* single-flight -- concurrent misses on one key compute exactly once;
* no stale reads -- a query issued after a mutation returns never sees
  pre-mutation data (epoch fencing);
* consistent counters -- ``ServiceStats`` adds up under races.

The solvers used here are deliberately cheap stand-ins: the lock
protocol, not the numerics, is under test (byte-level numerics are
covered by ``tests/test_serving_equivalence.py``).  Everything is
deterministic in outcome -- no sleep-and-hope assertions -- so the suite
is safe to loop in CI.
"""

from __future__ import annotations

import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graph import generators
from repro.serving import ConcurrentQueryEngine, EpochGate, SingleFlightCache

JOIN_TIMEOUT = 30.0  # generous; a healthy run takes milliseconds

#: Iteration count for the stress loops (the CI concurrency job runs the
#: whole file; each iteration is a full spawn/hammer/join cycle).
STRESS_ITERATIONS = 50


class CountingSolver:
    """Solver stand-in that records every invocation.

    The returned payload embeds the graph's edge count, which is what
    lets staleness assertions detect a pre-mutation answer served
    post-mutation.
    """

    def __init__(self, delay=0.0):
        self.delay = delay
        self.calls = []
        self._lock = threading.Lock()

    def __call__(self, graph, source, accuracy, seed):
        with self._lock:
            self.calls.append((int(source), accuracy, int(seed)))
        if self.delay:
            time.sleep(self.delay)
        return SimpleNamespace(
            source=int(source), m=graph.m, n=graph.n, seed=int(seed),
            estimates=np.array([float(graph.m), float(source)]),
        )

    @property
    def num_calls(self):
        with self._lock:
            return len(self.calls)


def run_threads(targets, *, timeout=JOIN_TIMEOUT):
    """Start one thread per target, join all, fail loudly on deadlock."""
    errors = []

    def wrap(fn):
        def runner():
            try:
                fn()
            except BaseException as exc:  # surfaced in the main thread
                errors.append(exc)
        return runner

    threads = [threading.Thread(target=wrap(t), daemon=True)
               for t in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout)
    stuck = [t for t in threads if t.is_alive()]
    assert not stuck, f"deadlock: {len(stuck)} threads failed to finish"
    if errors:
        raise errors[0]
    return threads


@pytest.fixture
def small_graph():
    return generators.preferential_attachment(60, 2, seed=3)


# ----------------------------------------------------------------------
# Single-flight deduplication
# ----------------------------------------------------------------------

def test_single_flight_concurrent_identical_queries(small_graph):
    """Many threads miss on the same source at once -> one compute."""
    solver = CountingSolver(delay=0.02)
    hammers = 8
    barrier = threading.Barrier(hammers)
    results = [None] * hammers
    with ConcurrentQueryEngine(small_graph, solver=solver,
                               max_workers=4) as engine:
        def hammer(i):
            def run():
                barrier.wait(timeout=JOIN_TIMEOUT)
                results[i] = engine.query(7)
            return run

        run_threads([hammer(i) for i in range(hammers)])
        assert solver.num_calls == 1
        assert all(r is results[0] for r in results)
        stats = engine.stats
        assert stats.queries == hammers
        assert stats.cache_misses == 1
        assert stats.solver_calls == 1
        # Everyone else either coalesced on the flight or hit the cache.
        assert stats.coalesced + stats.cache_hits == hammers - 1


def test_batch_with_duplicates_computes_unique_sources_once(small_graph):
    solver = CountingSolver(delay=0.005)
    sources = [1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4]
    with ConcurrentQueryEngine(small_graph, solver=solver,
                               max_workers=4) as engine:
        results = engine.query_batch(sources)
    assert solver.num_calls == len(set(sources))
    assert engine.stats.solver_calls == len(set(sources))
    assert [r.source for r in results] == sources


def test_solver_errors_propagate_and_are_not_cached(small_graph):
    attempts = []
    lock = threading.Lock()

    def flaky(graph, source, accuracy, seed):
        with lock:
            attempts.append(source)
            if len(attempts) == 1:
                raise RuntimeError("transient backend failure")
        return SimpleNamespace(source=source, m=graph.m,
                               estimates=np.zeros(2))

    with ConcurrentQueryEngine(small_graph, solver=flaky,
                               max_workers=2) as engine:
        with pytest.raises(RuntimeError, match="transient"):
            engine.query(5)
        # The failure was not cached; the retry computes fresh.
        result = engine.query(5)
        assert result.source == 5
        assert len(attempts) == 2


# ----------------------------------------------------------------------
# Mutations: quiescence, epochs, stale-read protection
# ----------------------------------------------------------------------

def test_no_stale_answer_after_mutation_returns(small_graph):
    """A query issued after add_edge returns must see the new graph.

    Runs STRESS_ITERATIONS rounds of mutate-then-query while background
    threads keep overlapping queries in flight the whole time, so every
    round races the invalidation against live flights.
    """
    solver = CountingSolver()
    stop = threading.Event()
    with ConcurrentQueryEngine(small_graph, solver=solver,
                               max_workers=4) as engine:
        def background():
            i = 0
            while not stop.is_set():
                engine.query(i % small_graph.n)
                i += 1

        noise = [threading.Thread(target=background, daemon=True)
                 for _ in range(3)]
        for thread in noise:
            thread.start()
        try:
            u = small_graph.n - 1
            for i in range(STRESS_ITERATIONS):
                v = i % (small_graph.n - 1)
                changed = (engine.add_edge(u, v) if i % 2 == 0
                           else engine.remove_edge(u, v))
                expected_m = engine.graph.m
                answer = engine.query(v)
                assert answer.m == expected_m, (
                    f"iteration {i}: stale answer (m={answer.m}, "
                    f"graph has m={expected_m}, changed={changed})"
                )
        finally:
            stop.set()
            for thread in noise:
                thread.join(JOIN_TIMEOUT)
            assert not any(t.is_alive() for t in noise)


def test_stress_queries_interleaved_with_mutations(small_graph):
    """N readers over overlapping sources + a mutating writer: no
    deadlock, and ServiceStats stays arithmetically consistent."""
    solver = CountingSolver()
    n = small_graph.n
    with ConcurrentQueryEngine(small_graph, solver=solver, cache_size=16,
                               max_workers=4) as engine:
        def reader(offset):
            def run():
                for i in range(STRESS_ITERATIONS):
                    engine.query((offset + i) % n)
            return run

        def writer():
            for i in range(STRESS_ITERATIONS):
                if i % 2 == 0:
                    engine.add_edge(0, (i % (n - 2)) + 1)
                else:
                    engine.remove_edge(0, (i % (n - 2)) + 1)

        run_threads([reader(0), reader(3), reader(5), reader(7), writer])
        stats = engine.stats
        assert stats.queries == 4 * STRESS_ITERATIONS
        assert (stats.cache_hits + stats.cache_misses + stats.coalesced
                == stats.queries)
        assert stats.solver_calls == stats.cache_misses
        assert stats.solver_calls == solver.num_calls
        assert stats.updates > 0
        # Mutations quiesced cleanly: epoch counted every effective one.
        assert engine.epoch == stats.updates


def test_mutation_epoch_and_cache_invalidation(small_graph):
    solver = CountingSolver()
    with ConcurrentQueryEngine(small_graph, solver=solver,
                               max_workers=2) as engine:
        engine.query(1)
        engine.query(2)
        before = engine.epoch
        # Growing edge to a brand-new node: guaranteed to change the graph.
        assert engine.add_edge(0, small_graph.n)
        assert engine.epoch == before + 1
        assert engine.stats.invalidations == 2
        # No-op mutation: no epoch bump, cache kept.
        engine.query(1)
        cached = engine.query(1)
        assert not engine.add_edge(0, small_graph.n)
        assert engine.epoch == before + 1
        assert engine.query(1) is cached


# ----------------------------------------------------------------------
# Building blocks under direct stress
# ----------------------------------------------------------------------

def test_epoch_gate_writer_waits_for_readers():
    gate = EpochGate()
    reader_in = threading.Event()
    release_reader = threading.Event()
    writer_done = threading.Event()

    def reader():
        with gate.read():
            reader_in.set()
            assert release_reader.wait(JOIN_TIMEOUT)

    def writer():
        with gate.write() as g:
            g.advance()
        writer_done.set()

    r = threading.Thread(target=reader, daemon=True)
    r.start()
    assert reader_in.wait(JOIN_TIMEOUT)
    w = threading.Thread(target=writer, daemon=True)
    w.start()
    # Writer must quiesce behind the active reader.
    assert not writer_done.wait(0.05)
    assert gate.epoch == 0
    release_reader.set()
    assert writer_done.wait(JOIN_TIMEOUT)
    assert gate.epoch == 1
    r.join(JOIN_TIMEOUT)
    w.join(JOIN_TIMEOUT)


def test_epoch_gate_advance_requires_write():
    gate = EpochGate()
    with pytest.raises(ParameterError):
        gate.advance()


def test_single_flight_cache_stress_consistency():
    """Hammer one SingleFlightCache from many threads across repeated
    invalidations; every get_or_compute must return the value computed
    for the key, and post-invalidate gets must recompute."""
    cache = SingleFlightCache(max_size=8)
    outcomes = []
    lock = threading.Lock()

    for iteration in range(STRESS_ITERATIONS):
        generation = cache.generation

        def worker(key):
            def run():
                value, outcome = cache.get_or_compute(
                    key, lambda: (key, generation)
                )
                with lock:
                    outcomes.append((key, value, outcome))
                assert value[0] == key
            return run

        run_threads([worker(k) for k in (0, 1, 0, 1, 2, 2)])
        cache.invalidate()
        assert len(cache) == 0

    assert len(outcomes) == STRESS_ITERATIONS * 6
    for key, value, outcome in outcomes:
        assert value[0] == key
        assert outcome in ("hit", "miss", "coalesced")


def test_single_flight_cache_does_not_publish_across_invalidation():
    """A flight that started before invalidate() must not seed the new
    generation's cache (the 'no stale post-epoch hit' guarantee)."""
    cache = SingleFlightCache(max_size=8)
    computing = threading.Event()
    release = threading.Event()

    def slow_compute():
        computing.set()
        assert release.wait(JOIN_TIMEOUT)
        return "old-generation-value"

    got = {}

    def owner():
        got["value"], got["outcome"] = cache.get_or_compute(
            "k", slow_compute
        )

    t = threading.Thread(target=owner, daemon=True)
    t.start()
    assert computing.wait(JOIN_TIMEOUT)
    cache.invalidate()          # fences the in-flight store out
    release.set()
    t.join(JOIN_TIMEOUT)
    assert got["value"] == "old-generation-value"  # waiter still served
    assert "k" not in cache                        # ...but never cached
    value, outcome = cache.get_or_compute("k", lambda: "fresh")
    assert (value, outcome) == ("fresh", "miss")


def test_begin_flights_never_shadows_inflight_solo_solve():
    """Cache-key audit for the blocked batch path: a key already being
    solved solo lands in ``waiting`` -- never ``owned`` -- so the block
    coalesces onto the solo flight instead of duplicating or shadowing
    it, and keys the block does own publish under the very entries solo
    lookups hit afterwards."""
    cache = SingleFlightCache(max_size=8)
    computing = threading.Event()
    release = threading.Event()

    def slow_compute():
        computing.set()
        assert release.wait(JOIN_TIMEOUT)
        return "solo-value"

    solo = {}

    def solo_owner():
        solo["value"], solo["outcome"] = cache.get_or_compute(
            "busy", slow_compute
        )

    t = threading.Thread(target=solo_owner, daemon=True)
    t.start()
    assert computing.wait(JOIN_TIMEOUT)

    hits, owned, waiting = cache.begin_flights(
        ["busy", "cold", "cold", "busy"]  # duplicates triage once
    )
    assert hits == {}
    assert list(owned) == ["cold"]       # never the in-flight solo key
    assert list(waiting) == ["busy"]
    cache.settle_flight("cold", owned["cold"], value="block-value")

    release.set()
    t.join(JOIN_TIMEOUT)
    flight, stale = waiting["busy"]
    assert stale is False
    assert cache.wait_for("busy", flight, stale) == ("solo-value",
                                                     "coalesced")
    # Published entries: the solo solve owns its key, the block its own.
    assert cache.get_or_compute("busy", lambda: "x") == ("solo-value",
                                                         "hit")
    assert cache.get_or_compute("cold", lambda: "x") == ("block-value",
                                                         "hit")


def test_settle_flight_respects_invalidation_fence():
    """A block flight that took off before invalidate() serves its
    waiters but must not seed the new generation -- same fence as the
    solo owner path."""
    cache = SingleFlightCache(max_size=8)
    _, owned, _ = cache.begin_flights(["k"])
    cache.invalidate()
    cache.settle_flight("k", owned["k"], value="stale")
    assert "k" not in cache
    # A waiter that joined before the invalidation is told to retry.
    assert cache.wait_for("k", owned["k"], True) == (None, "retry")


def test_blocked_batch_entries_serve_solo_queries():
    """Engine-level cache-key audit: entries published by a blocked
    PowerPush batch are plain ``(source, accuracy)`` entries, so solo
    queries (and repeat batches) hit them; no duplicate keys appear."""
    graph = generators.preferential_attachment(200, 3, seed=3)
    with ConcurrentQueryEngine(graph, solver="powerpush",
                               max_workers=3) as engine:
        batched = engine.query_batch([4, 9, 60])
        assert engine.stats.solver_calls == 1  # one blocked solve
        assert sorted(engine._cache.keys()) == [(4, None), (9, None),
                                                (60, None)]
        solo = engine.query(9)
        assert solo is batched[1]              # the cached object itself
        assert engine.stats.cache_hits == 1
        assert engine.stats.solver_calls == 1  # no recompute


def test_blocked_batch_coalesces_onto_inflight_solo_solve():
    """A blocked batch arriving while a solo query is mid-solve for one
    of its sources must wait for that flight, not solve the source a
    second time."""
    graph = generators.preferential_attachment(200, 3, seed=3)
    with ConcurrentQueryEngine(graph, solver="powerpush",
                               max_workers=4) as engine:
        started = threading.Event()
        release = threading.Event()
        original = engine._compute

        def gated_compute(g, source, accuracy, epoch, deadline=None):
            if source == 7:
                started.set()
                assert release.wait(JOIN_TIMEOUT)
            return original(g, source, accuracy, epoch, deadline)

        engine._compute = gated_compute
        solo = {}

        def solo_query():
            solo["result"] = engine.query(7)

        t = threading.Thread(target=solo_query, daemon=True)
        t.start()
        assert started.wait(JOIN_TIMEOUT)

        batch = {}

        def run_batch():
            batch["results"] = engine.query_batch([7, 11, 23])

        b = threading.Thread(target=run_batch, daemon=True)
        b.start()
        release.set()
        t.join(JOIN_TIMEOUT)
        b.join(JOIN_TIMEOUT)
        assert batch["results"][0] is solo["result"]
        # Source 7 was computed exactly once, by the solo flight; the
        # batch's blocked solve covered only the two cold sources.
        assert engine.stats.coalesced >= 1
        assert sorted(engine._cache.keys()) == [(7, None), (11, None),
                                                (23, None)]


def test_late_arrival_never_joins_pre_invalidation_flight():
    """A caller arriving *after* invalidate() must not coalesce onto a
    flight that took off before it -- that flight's value belongs to the
    old graph.  It has to wait the stale flight out and compute fresh.

    Regression test: the cache used to join any in-flight compute for
    the key regardless of generation, deterministically handing the
    late caller the pre-invalidation value as ("old", "coalesced").
    """
    cache = SingleFlightCache(max_size=8)
    computing = threading.Event()
    release = threading.Event()

    def slow_compute():
        computing.set()
        assert release.wait(JOIN_TIMEOUT)
        return "old"

    first = {}

    def owner():
        first["value"], first["outcome"] = cache.get_or_compute(
            "k", slow_compute
        )

    owner_thread = threading.Thread(target=owner, daemon=True)
    owner_thread.start()
    assert computing.wait(JOIN_TIMEOUT)
    cache.invalidate()  # everything computed before this point is stale

    late = {}
    done = threading.Event()

    def late_caller():
        late["value"], late["outcome"] = cache.get_or_compute(
            "k", lambda: "fresh"
        )
        done.set()

    late_thread = threading.Thread(target=late_caller, daemon=True)
    late_thread.start()
    # The late caller must block behind the stale flight, not share its
    # value: nothing to assert yet means it is (correctly) waiting.
    assert not done.wait(0.2)
    release.set()
    owner_thread.join(JOIN_TIMEOUT)
    assert done.wait(JOIN_TIMEOUT)
    late_thread.join(JOIN_TIMEOUT)
    assert first["value"] == "old"  # pre-invalidation caller still served
    assert (late["value"], late["outcome"]) == ("fresh", "miss")


def test_lru_eviction_is_thread_safe():
    cache = SingleFlightCache(max_size=4)

    def worker(base):
        def run():
            for i in range(STRESS_ITERATIONS):
                key = (base + i) % 10
                value, _ = cache.get_or_compute(key, lambda k=key: k * 2)
                assert value == key * 2
        return run

    run_threads([worker(b) for b in range(5)])
    assert len(cache) <= 4


def test_engine_rejects_bad_parameters(small_graph):
    with pytest.raises(ParameterError):
        ConcurrentQueryEngine(small_graph, max_workers=0)
    with ConcurrentQueryEngine(small_graph,
                               solver=CountingSolver()) as engine:
        with pytest.raises(ParameterError):
            engine.query(10_000)
