"""End-to-end tests for ResAcc, its variants and MSRWR."""

import numpy as np
import pytest

from repro.baselines.inverse import ExactSolver
from repro.core import (
    AccuracyParams,
    ResAccParams,
    msrwr,
    no_loop_resacc,
    no_ofd_resacc,
    no_sg_resacc,
    resacc,
)
from repro.errors import ParameterError
from repro.graph import from_edges, generators
from repro.metrics.errors import guarantee_violation_rate

ALPHA = 0.2


class TestResAccCorrectness:
    def test_estimates_form_probability_vector(self, ba_graph):
        result = resacc(ba_graph, 0, seed=1)
        assert result.estimates.min() >= 0
        assert result.estimates.sum() == pytest.approx(1.0, abs=1e-9)

    def test_meets_accuracy_contract(self, ba_graph, exact):
        accuracy = AccuracyParams.paper_defaults(ba_graph.n)
        truth = exact.query(5).estimates
        result = resacc(ba_graph, 5, accuracy=accuracy, seed=3)
        rate = guarantee_violation_rate(truth, result.estimates, accuracy)
        assert rate == 0.0

    def test_contract_across_sources_and_seeds(self, ba_graph, exact):
        accuracy = AccuracyParams.paper_defaults(ba_graph.n)
        violations = 0
        trials = 0
        for source in (0, 17, 101):
            truth = exact.query(source).estimates
            for seed in range(5):
                result = resacc(ba_graph, source, accuracy=accuracy,
                                seed=seed)
                rate = guarantee_violation_rate(truth, result.estimates,
                                                accuracy)
                violations += rate > 0
                trials += 1
        # p_f = 1/n per node; across 15 runs we expect ~0 failures.
        assert violations <= 1

    def test_unbiasedness(self):
        g = generators.preferential_attachment(40, 2, seed=2)
        truth = ExactSolver(g, ALPHA).query(0).estimates
        accuracy = AccuracyParams(eps=1.0, delta=0.05, p_f=0.1)
        total = np.zeros(g.n)
        trials = 60
        for seed in range(trials):
            total += resacc(g, 0, accuracy=accuracy, seed=seed).estimates
        assert np.max(np.abs(total / trials - truth)) < 0.02

    def test_walk_scale_zero_gives_pure_push_estimate(self, ba_graph):
        result = resacc(ba_graph, 0, seed=1, walk_scale=0.0)
        assert result.walks_used == 0
        # Reserves alone underestimate by exactly the leftover residue.
        assert result.estimates.sum() == pytest.approx(
            1.0 - result.extras["r_sum"], abs=1e-9
        )

    def test_dangling_source(self):
        g = from_edges(4, [(0, 1), (1, 2), (2, 0)])
        result = resacc(g, 3, seed=0)
        expected = np.zeros(4)
        expected[3] = 1.0
        assert np.allclose(result.estimates, expected)

    def test_deterministic_given_rng_seed(self, ba_graph):
        a = resacc(ba_graph, 2, seed=9).estimates
        b = resacc(ba_graph, 2, seed=9).estimates
        assert np.array_equal(a, b)

    def test_queue_and_frontier_agree_on_contract(self, ba_graph, exact):
        accuracy = AccuracyParams.paper_defaults(ba_graph.n)
        truth = exact.query(3).estimates
        for method in ("frontier", "queue"):
            params = ResAccParams(h=1, push_method=method)
            result = resacc(ba_graph, 3, params=params, accuracy=accuracy,
                            seed=4)
            assert guarantee_violation_rate(
                truth, result.estimates, accuracy) == 0.0


class TestResAccDiagnostics:
    def test_phase_times_recorded(self, ba_graph):
        result = resacc(ba_graph, 0, seed=1)
        assert set(result.phase_seconds) == {"hhopfwd", "omfwd", "remedy"}
        assert result.total_seconds > 0

    def test_extras_populated(self, ba_graph):
        result = resacc(ba_graph, 0, seed=1)
        for key in ("r1_source", "num_rounds", "scaler", "r_sum_hop",
                    "r_sum", "n_r", "r_max_f"):
            assert key in result.extras

    def test_default_r_max_f_is_paper_value(self, ba_graph):
        result = resacc(ba_graph, 0, seed=1)
        assert result.extras["r_max_f"] == pytest.approx(
            1.0 / (10 * ba_graph.m))

    def test_top_k(self, ba_graph):
        result = resacc(ba_graph, 0, seed=1)
        nodes, values = result.top_k(5)
        assert len(nodes) == 5
        assert np.all(np.diff(values) <= 0)
        assert values[0] == result.estimates.max()

    def test_source_out_of_range(self, ba_graph):
        with pytest.raises(ParameterError):
            resacc(ba_graph, ba_graph.n, seed=0)


class TestTraceReturn:
    """Pin the result's ``.trace`` field against the NULL_TRACE rebinding
    bug: ``trace or None`` evaluated after ``trace`` was rebound to the
    falsy NULL_TRACE, so a caller-supplied trace was returned correctly
    only by accident of operator ordering -- and a refactor returning the
    rebound name would silently drop it."""

    def test_no_trace_returns_none(self, ba_graph):
        assert resacc(ba_graph, 0, seed=1).trace is None

    def test_supplied_trace_is_returned(self, ba_graph):
        from repro.obs import QueryTrace

        trace = QueryTrace()
        result = resacc(ba_graph, 0, seed=1, trace=trace)
        assert result.trace is trace
        assert [p.name for p in trace.phases] == ["hhopfwd", "omfwd",
                                                  "remedy"]

    def test_traced_estimates_identical_to_untraced(self, ba_graph):
        from repro.obs import QueryTrace

        plain = resacc(ba_graph, 4, seed=2).estimates
        traced = resacc(ba_graph, 4, seed=2, trace=QueryTrace()).estimates
        assert plain.tobytes() == traced.tobytes()


class TestParams:
    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            ResAccParams(alpha=0.0)
        with pytest.raises(ParameterError):
            ResAccParams(h=-1)
        with pytest.raises(ParameterError):
            ResAccParams(r_max_hop=0.0)
        with pytest.raises(ParameterError):
            ResAccParams(push_method="magic")

    def test_invalid_accuracy(self):
        with pytest.raises(ParameterError):
            AccuracyParams(eps=0.0, delta=0.1, p_f=0.1)
        with pytest.raises(ParameterError):
            AccuracyParams(eps=0.5, delta=0.0, p_f=0.1)
        with pytest.raises(ParameterError):
            AccuracyParams(eps=0.5, delta=0.1, p_f=1.0)

    def test_walk_constant_formula(self):
        acc = AccuracyParams(eps=0.5, delta=0.01, p_f=0.01)
        expected = (2 * 0.5 / 3 + 2) * np.log(2 / 0.01) / (0.25 * 0.01)
        assert acc.walk_constant == pytest.approx(expected)
        assert acc.num_walks(0.5) == int(np.ceil(0.5 * expected))

    def test_paper_defaults(self):
        acc = AccuracyParams.paper_defaults(1000)
        assert acc.delta == pytest.approx(1 / 1000)
        assert acc.p_f == pytest.approx(1 / 1000)
        assert acc.eps == 0.5

    def test_with_eps(self):
        acc = AccuracyParams.paper_defaults(1000).with_eps(0.1)
        assert acc.eps == 0.1
        assert acc.delta == pytest.approx(1 / 1000)


class TestVariants:
    @pytest.mark.parametrize("variant", [no_loop_resacc, no_sg_resacc,
                                         no_ofd_resacc])
    def test_variants_meet_contract(self, ba_graph, exact, variant):
        accuracy = AccuracyParams.paper_defaults(ba_graph.n)
        truth = exact.query(7).estimates
        params = ResAccParams(h=1, r_max_hop=1e-8)
        result = variant(ba_graph, 7, params=params, accuracy=accuracy,
                         seed=2)
        assert guarantee_violation_rate(truth, result.estimates,
                                        accuracy) == 0.0

    def test_no_ofd_needs_more_walks(self, ba_graph):
        accuracy = AccuracyParams.paper_defaults(ba_graph.n)
        params = ResAccParams(h=1, r_max_hop=1e-8)
        base = resacc(ba_graph, 0, params=params, accuracy=accuracy, seed=1)
        ablated = no_ofd_resacc(ba_graph, 0, params=params,
                                accuracy=accuracy, seed=1)
        assert ablated.walks_used > base.walks_used

    def test_variant_names(self, ba_graph):
        params = ResAccParams(h=1, r_max_hop=1e-6)
        assert no_loop_resacc(ba_graph, 0, params=params,
                              seed=0).algorithm == "no-loop-resacc"
        assert no_sg_resacc(ba_graph, 0, params=params,
                            seed=0).algorithm == "no-sg-resacc"
        assert no_ofd_resacc(ba_graph, 0, params=params,
                             seed=0).algorithm == "no-ofd-resacc"


class TestMSRWR:
    def test_matrix_shape_and_rows(self, ba_graph):
        solver = lambda g, s: resacc(g, s, seed=s)   # noqa: E731
        result = msrwr(ba_graph, [0, 5, 9], solver)
        assert result.matrix.shape == (3, ba_graph.n)
        single = resacc(ba_graph, 5, seed=5).estimates
        assert np.array_equal(result.for_source(5), single)

    def test_total_seconds(self, ba_graph):
        solver = lambda g, s: resacc(g, s, seed=0)   # noqa: E731
        result = msrwr(ba_graph, [0, 1], solver)
        assert len(result.per_source_seconds) == 2
        assert result.total_seconds > 0

    def test_unknown_source_lookup(self, ba_graph):
        solver = lambda g, s: resacc(g, s, seed=0)   # noqa: E731
        result = msrwr(ba_graph, [0], solver)
        with pytest.raises(ParameterError):
            result.for_source(42)

    def test_validation(self, ba_graph):
        solver = lambda g, s: resacc(g, s, seed=0)   # noqa: E731
        with pytest.raises(ParameterError):
            msrwr(ba_graph, [], solver)
        with pytest.raises(ParameterError):
            msrwr(ba_graph, [ba_graph.n + 1], solver)

    def test_keep_results(self, ba_graph):
        solver = lambda g, s: resacc(g, s, seed=0)   # noqa: E731
        result = msrwr(ba_graph, [0, 1], solver, keep_results=True)
        assert len(result.results) == 2
        assert result.results[0].algorithm == "resacc"


class TestResultHelpers:
    def test_support_and_nodes_above(self, ba_graph):
        result = resacc(ba_graph, 0, seed=1)
        threshold = 1.0 / ba_graph.n
        above = result.nodes_above(threshold)
        assert result.support(threshold) == above.size
        values = result.estimates[above]
        assert np.all(np.diff(values) <= 1e-15)
        assert np.all(values > threshold)

    def test_normalized_after_partial_walks(self, ba_graph):
        partial = resacc(ba_graph, 0, seed=1, walk_scale=0.0)
        assert partial.estimates.sum() < 1.0
        full = partial.normalized()
        assert full.estimates.sum() == pytest.approx(1.0)
        assert "renormalized_from" in full.extras

    def test_normalized_zero_vector_safe(self):
        from repro.core.result import SSRWRResult

        empty = SSRWRResult(source=0, estimates=np.zeros(3), alpha=0.2)
        assert empty.normalized().estimates.sum() == 0.0
