"""Tests for the forward-push kernel: invariant, stopping, policies."""

import numpy as np
import pytest

from repro.baselines.inverse import ExactSolver
from repro.baselines.power import power_iteration
from repro.errors import ConvergenceError, ParameterError
from repro.graph import from_edges, generators
from repro.push import (
    forward_push_loop,
    init_state,
    push_thresholds,
    single_push,
)

ALPHA = 0.2


def push_invariant_gap(graph, source, reserve, residue, truth_vectors):
    """Max violation of pi(s,t) = reserve(t) + sum_v residue(v) pi(v,t)."""
    combined = reserve.copy()
    for v in np.flatnonzero(residue > 0):
        combined += residue[v] * truth_vectors[v]
    truth = truth_vectors[source]
    return float(np.max(np.abs(combined - truth)))


class TestSinglePush:
    def test_moves_mass(self, tiny_graph):
        reserve, residue = init_state(tiny_graph, 0)
        single_push(tiny_graph, 0, reserve, residue, ALPHA)
        assert reserve[0] == pytest.approx(ALPHA)
        assert residue[0] == 0.0
        assert residue[1] == pytest.approx(1 - ALPHA)

    def test_dangling_absorbs(self, tiny_graph):
        reserve, residue = init_state(tiny_graph, 5)
        single_push(tiny_graph, 5, reserve, residue, ALPHA)
        assert reserve[5] == pytest.approx(1.0)
        assert residue.sum() == 0.0

    def test_dangling_restart(self, tiny_graph):
        g = tiny_graph.with_dangling("restart")
        reserve, residue = init_state(g, 5)
        single_push(g, 5, reserve, residue, ALPHA, source=0)
        assert reserve[5] == pytest.approx(ALPHA)
        assert residue[0] == pytest.approx(1 - ALPHA)

    def test_noop_on_zero_residue(self, tiny_graph):
        reserve, residue = init_state(tiny_graph, 0)
        single_push(tiny_graph, 3, reserve, residue, ALPHA)
        assert reserve[3] == 0.0


class TestStoppingCondition:
    @pytest.mark.parametrize("method", ["frontier", "queue"])
    def test_no_node_satisfies_condition_after(self, ba_graph, method):
        reserve, residue = init_state(ba_graph, 0)
        forward_push_loop(ba_graph, reserve, residue, ALPHA, 1e-5,
                          method=method)
        thresholds = push_thresholds(ba_graph, 1e-5)
        assert np.all(residue < thresholds)

    @pytest.mark.parametrize("method", ["frontier", "queue"])
    def test_mass_conservation(self, ba_graph, method):
        reserve, residue = init_state(ba_graph, 3)
        forward_push_loop(ba_graph, reserve, residue, ALPHA, 1e-6,
                          method=method)
        assert reserve.sum() + residue.sum() == pytest.approx(1.0, abs=1e-12)

    def test_mass_conservation_with_dangling(self, web_graph):
        reserve, residue = init_state(web_graph, 1)
        forward_push_loop(web_graph, reserve, residue, ALPHA, 1e-7)
        assert reserve.sum() + residue.sum() == pytest.approx(1.0, abs=1e-12)

    def test_budget_exceeded_raises(self, ba_graph):
        reserve, residue = init_state(ba_graph, 0)
        with pytest.raises(ConvergenceError):
            forward_push_loop(ba_graph, reserve, residue, ALPHA, 1e-12,
                              max_pushes=5)


class TestInvariant:
    @pytest.mark.parametrize("method", ["frontier", "queue"])
    def test_invariant_against_exact(self, method):
        g = generators.preferential_attachment(60, 2, seed=3)
        solver = ExactSolver(g, ALPHA)
        truth_vectors = [solver.query(v).estimates for v in range(g.n)]
        reserve, residue = init_state(g, 4)
        forward_push_loop(g, reserve, residue, ALPHA, 1e-3, method=method)
        gap = push_invariant_gap(g, 4, reserve, residue, truth_vectors)
        assert gap < 1e-10

    def test_invariant_with_dangling_nodes(self):
        g = from_edges(5, [(0, 1), (1, 2), (2, 0), (1, 3), (3, 4)])
        solver = ExactSolver(g, ALPHA)
        truth_vectors = [solver.query(v).estimates for v in range(g.n)]
        reserve, residue = init_state(g, 0)
        forward_push_loop(g, reserve, residue, ALPHA, 0.05)
        gap = push_invariant_gap(g, 0, reserve, residue, truth_vectors)
        assert gap < 1e-12

    def test_restart_policy_against_power(self):
        g = from_edges(5, [(0, 1), (1, 2), (2, 0), (1, 3), (3, 4)]) \
            .with_dangling("restart")
        reserve, residue = init_state(g, 0)
        forward_push_loop(g, reserve, residue, ALPHA, 1e-14, source=0)
        truth = power_iteration(g, 0, alpha=ALPHA, tol=1e-13).estimates
        assert np.max(np.abs(reserve - truth)) < 1e-10


class TestSchedulingEquivalence:
    def test_queue_and_frontier_agree_at_tiny_threshold(self, ba_graph):
        results = {}
        for method in ("frontier", "queue"):
            reserve, residue = init_state(ba_graph, 7)
            forward_push_loop(ba_graph, reserve, residue, ALPHA, 1e-12,
                              method=method)
            results[method] = reserve
        gap = np.max(np.abs(results["frontier"] - results["queue"]))
        assert gap < 1e-9  # both are within r_sum of the same fixpoint

    def test_can_push_mask_freezes_nodes(self, tiny_graph):
        reserve, residue = init_state(tiny_graph, 0)
        can_push = np.ones(tiny_graph.n, dtype=bool)
        can_push[2] = False
        forward_push_loop(tiny_graph, reserve, residue, ALPHA, 1e-9,
                          can_push=can_push)
        assert reserve[2] == 0.0       # never pushed: no reserve gained
        assert residue[2] > 0.0        # mass accumulated instead

    def test_seed_order_respected_but_complete(self, ba_graph):
        reserve, residue = init_state(ba_graph, 0)
        stats = forward_push_loop(ba_graph, reserve, residue, ALPHA, 1e-6,
                                  method="queue", seeds=np.array([0]))
        assert stats.pushes > 1
        assert np.all(residue < push_thresholds(ba_graph, 1e-6))


def parallel_edge_graph():
    """A raw CSR graph with duplicated edges (from_edges would dedupe).

    Node 0 has two parallel edges to 1 and one to 2; node 1 has two
    parallel edges to 2; node 2 closes the cycle back to 0.
    """
    from repro.graph import CSRGraph

    return CSRGraph(
        3,
        np.array([0, 3, 5, 6], dtype=np.int64),
        np.array([1, 1, 2, 2, 2, 0], dtype=np.int64),
    )


class TestParallelEdges:
    """Duplicate-edge regression: fancy-index ``+=`` buffers duplicate
    targets, so a neighbour behind k parallel edges used to receive a
    single share instead of k -- losing mass -- and the queue scheduler
    additionally enqueued it k times."""

    def test_single_push_scales_by_multiplicity(self):
        g = parallel_edge_graph()
        reserve, residue = init_state(g, 0)
        single_push(g, 0, reserve, residue, ALPHA)
        # Node 0 spreads (1 - alpha) over out-degree 3: two shares to
        # node 1, one share to node 2.
        assert reserve[0] == pytest.approx(ALPHA)
        assert residue[1] == pytest.approx(2.0 * (1 - ALPHA) / 3.0)
        assert residue[2] == pytest.approx(1.0 * (1 - ALPHA) / 3.0)
        assert reserve.sum() + residue.sum() == pytest.approx(1.0,
                                                              abs=1e-15)

    @pytest.mark.parametrize("method", ["frontier", "queue", "priority"])
    def test_mass_conserved(self, method):
        g = parallel_edge_graph()
        reserve, residue = init_state(g, 0)
        forward_push_loop(g, reserve, residue, ALPHA, 1e-10, method=method)
        assert reserve.sum() + residue.sum() == pytest.approx(1.0,
                                                              abs=1e-12)

    def test_all_schedulers_reach_identical_fixpoint(self):
        g = parallel_edge_graph()
        reserves = {}
        for method in ("frontier", "queue", "priority"):
            reserve, residue = init_state(g, 0)
            forward_push_loop(g, reserve, residue, ALPHA, 1e-12,
                              method=method)
            reserves[method] = reserve
        for method in ("queue", "priority"):
            gap = np.max(np.abs(reserves["frontier"] - reserves[method]))
            assert gap < 1e-9

    def test_queue_does_not_double_enqueue(self):
        # One push at node 0 makes node 1 hot via two parallel edges.
        # The worklist must hold node 1 once: re-processing a drained
        # node is skipped by the residue re-check, so the tell is the
        # push count -- it must match a deduplicated-edge graph that
        # carries the same transition probabilities.
        g = parallel_edge_graph()
        reserve, residue = init_state(g, 0)
        stats = forward_push_loop(g, reserve, residue, ALPHA, 1e-10,
                                  method="queue")
        # Same random-walk semantics without duplicates: 0->1 with
        # probability 2/3 and 0->2 with 1/3 is not expressible in an
        # unweighted simple graph, so compare against the priority
        # scheduler on the same graph instead -- one heap entry per
        # neighbour means push counts agree when no entry goes stale.
        reserve_p, residue_p = init_state(g, 0)
        stats_p = forward_push_loop(g, reserve_p, residue_p, ALPHA, 1e-10,
                                    method="priority")
        assert stats.pushes == stats_p.pushes

    def test_invariant_against_power_iteration(self):
        # power_iteration consumes the CSR arrays directly, so parallel
        # edges weight its transition matrix identically; a partial push
        # state must satisfy Equation 2 against that ground truth.
        g = parallel_edge_graph()
        truth_vectors = [
            power_iteration(g, v, alpha=ALPHA, tol=1e-14).estimates
            for v in range(g.n)
        ]
        reserve, residue = init_state(g, 0)
        forward_push_loop(g, reserve, residue, ALPHA, 0.05)
        gap = push_invariant_gap(g, 0, reserve, residue, truth_vectors)
        assert gap < 1e-12


class TestValidation:
    def test_bad_alpha(self, tiny_graph):
        reserve, residue = init_state(tiny_graph, 0)
        with pytest.raises(ParameterError):
            forward_push_loop(tiny_graph, reserve, residue, 1.5, 1e-3)

    def test_bad_r_max(self, tiny_graph):
        reserve, residue = init_state(tiny_graph, 0)
        with pytest.raises(ParameterError):
            forward_push_loop(tiny_graph, reserve, residue, ALPHA, 0.0)

    def test_restart_requires_source(self, tiny_graph):
        g = tiny_graph.with_dangling("restart")
        reserve, residue = init_state(g, 0)
        with pytest.raises(ParameterError):
            forward_push_loop(g, reserve, residue, ALPHA, 1e-3)

    def test_unknown_method(self, tiny_graph):
        reserve, residue = init_state(tiny_graph, 0)
        with pytest.raises(ParameterError):
            forward_push_loop(tiny_graph, reserve, residue, ALPHA, 1e-3,
                              method="chaotic")
