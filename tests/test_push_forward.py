"""Tests for the forward-push kernel: invariant, stopping, policies."""

import numpy as np
import pytest

from repro.baselines.inverse import ExactSolver
from repro.baselines.power import power_iteration
from repro.errors import ConvergenceError, ParameterError
from repro.graph import from_edges, generators
from repro.push import (
    forward_push_loop,
    init_state,
    push_thresholds,
    single_push,
)

ALPHA = 0.2


def push_invariant_gap(graph, source, reserve, residue, truth_vectors):
    """Max violation of pi(s,t) = reserve(t) + sum_v residue(v) pi(v,t)."""
    combined = reserve.copy()
    for v in np.flatnonzero(residue > 0):
        combined += residue[v] * truth_vectors[v]
    truth = truth_vectors[source]
    return float(np.max(np.abs(combined - truth)))


class TestSinglePush:
    def test_moves_mass(self, tiny_graph):
        reserve, residue = init_state(tiny_graph, 0)
        single_push(tiny_graph, 0, reserve, residue, ALPHA)
        assert reserve[0] == pytest.approx(ALPHA)
        assert residue[0] == 0.0
        assert residue[1] == pytest.approx(1 - ALPHA)

    def test_dangling_absorbs(self, tiny_graph):
        reserve, residue = init_state(tiny_graph, 5)
        single_push(tiny_graph, 5, reserve, residue, ALPHA)
        assert reserve[5] == pytest.approx(1.0)
        assert residue.sum() == 0.0

    def test_dangling_restart(self, tiny_graph):
        g = tiny_graph.with_dangling("restart")
        reserve, residue = init_state(g, 5)
        single_push(g, 5, reserve, residue, ALPHA, source=0)
        assert reserve[5] == pytest.approx(ALPHA)
        assert residue[0] == pytest.approx(1 - ALPHA)

    def test_noop_on_zero_residue(self, tiny_graph):
        reserve, residue = init_state(tiny_graph, 0)
        single_push(tiny_graph, 3, reserve, residue, ALPHA)
        assert reserve[3] == 0.0


class TestStoppingCondition:
    @pytest.mark.parametrize("method", ["frontier", "queue"])
    def test_no_node_satisfies_condition_after(self, ba_graph, method):
        reserve, residue = init_state(ba_graph, 0)
        forward_push_loop(ba_graph, reserve, residue, ALPHA, 1e-5,
                          method=method)
        thresholds = push_thresholds(ba_graph, 1e-5)
        assert np.all(residue < thresholds)

    @pytest.mark.parametrize("method", ["frontier", "queue"])
    def test_mass_conservation(self, ba_graph, method):
        reserve, residue = init_state(ba_graph, 3)
        forward_push_loop(ba_graph, reserve, residue, ALPHA, 1e-6,
                          method=method)
        assert reserve.sum() + residue.sum() == pytest.approx(1.0, abs=1e-12)

    def test_mass_conservation_with_dangling(self, web_graph):
        reserve, residue = init_state(web_graph, 1)
        forward_push_loop(web_graph, reserve, residue, ALPHA, 1e-7)
        assert reserve.sum() + residue.sum() == pytest.approx(1.0, abs=1e-12)

    def test_budget_exceeded_raises(self, ba_graph):
        reserve, residue = init_state(ba_graph, 0)
        with pytest.raises(ConvergenceError):
            forward_push_loop(ba_graph, reserve, residue, ALPHA, 1e-12,
                              max_pushes=5)


class TestInvariant:
    @pytest.mark.parametrize("method", ["frontier", "queue"])
    def test_invariant_against_exact(self, method):
        g = generators.preferential_attachment(60, 2, seed=3)
        solver = ExactSolver(g, ALPHA)
        truth_vectors = [solver.query(v).estimates for v in range(g.n)]
        reserve, residue = init_state(g, 4)
        forward_push_loop(g, reserve, residue, ALPHA, 1e-3, method=method)
        gap = push_invariant_gap(g, 4, reserve, residue, truth_vectors)
        assert gap < 1e-10

    def test_invariant_with_dangling_nodes(self):
        g = from_edges(5, [(0, 1), (1, 2), (2, 0), (1, 3), (3, 4)])
        solver = ExactSolver(g, ALPHA)
        truth_vectors = [solver.query(v).estimates for v in range(g.n)]
        reserve, residue = init_state(g, 0)
        forward_push_loop(g, reserve, residue, ALPHA, 0.05)
        gap = push_invariant_gap(g, 0, reserve, residue, truth_vectors)
        assert gap < 1e-12

    def test_restart_policy_against_power(self):
        g = from_edges(5, [(0, 1), (1, 2), (2, 0), (1, 3), (3, 4)]) \
            .with_dangling("restart")
        reserve, residue = init_state(g, 0)
        forward_push_loop(g, reserve, residue, ALPHA, 1e-14, source=0)
        truth = power_iteration(g, 0, alpha=ALPHA, tol=1e-13).estimates
        assert np.max(np.abs(reserve - truth)) < 1e-10


class TestSchedulingEquivalence:
    def test_queue_and_frontier_agree_at_tiny_threshold(self, ba_graph):
        results = {}
        for method in ("frontier", "queue"):
            reserve, residue = init_state(ba_graph, 7)
            forward_push_loop(ba_graph, reserve, residue, ALPHA, 1e-12,
                              method=method)
            results[method] = reserve
        gap = np.max(np.abs(results["frontier"] - results["queue"]))
        assert gap < 1e-9  # both are within r_sum of the same fixpoint

    def test_can_push_mask_freezes_nodes(self, tiny_graph):
        reserve, residue = init_state(tiny_graph, 0)
        can_push = np.ones(tiny_graph.n, dtype=bool)
        can_push[2] = False
        forward_push_loop(tiny_graph, reserve, residue, ALPHA, 1e-9,
                          can_push=can_push)
        assert reserve[2] == 0.0       # never pushed: no reserve gained
        assert residue[2] > 0.0        # mass accumulated instead

    def test_seed_order_respected_but_complete(self, ba_graph):
        reserve, residue = init_state(ba_graph, 0)
        stats = forward_push_loop(ba_graph, reserve, residue, ALPHA, 1e-6,
                                  method="queue", seeds=np.array([0]))
        assert stats.pushes > 1
        assert np.all(residue < push_thresholds(ba_graph, 1e-6))


class TestValidation:
    def test_bad_alpha(self, tiny_graph):
        reserve, residue = init_state(tiny_graph, 0)
        with pytest.raises(ParameterError):
            forward_push_loop(tiny_graph, reserve, residue, 1.5, 1e-3)

    def test_bad_r_max(self, tiny_graph):
        reserve, residue = init_state(tiny_graph, 0)
        with pytest.raises(ParameterError):
            forward_push_loop(tiny_graph, reserve, residue, ALPHA, 0.0)

    def test_restart_requires_source(self, tiny_graph):
        g = tiny_graph.with_dangling("restart")
        reserve, residue = init_state(g, 0)
        with pytest.raises(ParameterError):
            forward_push_loop(g, reserve, residue, ALPHA, 1e-3)

    def test_unknown_method(self, tiny_graph):
        reserve, residue = init_state(tiny_graph, 0)
        with pytest.raises(ParameterError):
            forward_push_loop(tiny_graph, reserve, residue, ALPHA, 1e-3,
                              method="chaotic")
