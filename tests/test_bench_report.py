"""Tests for the table/series rendering and value formatting."""

import pytest

from repro.bench.report import (
    OOM,
    OOT,
    Series,
    Table,
    format_value,
    render_all,
)


class TestFormatValue:
    def test_strings_pass_through(self):
        assert format_value(OOM) == "o.o.m"
        assert format_value(OOT) == "o.o.t"

    def test_none_is_dash(self):
        assert format_value(None) == "-"

    def test_ints_group(self):
        assert format_value(1_234_567) == "1,234,567"

    def test_zero(self):
        assert format_value(0) == "0"
        assert format_value(0.0) == "0"

    def test_small_floats_scientific(self):
        assert "e" in format_value(1.5e-7)

    def test_large_floats_scientific(self):
        assert "e" in format_value(3.2e9)

    def test_normal_floats_compact(self):
        assert format_value(0.5126) == "0.5126"

    def test_bool(self):
        assert format_value(True) == "True"


class TestTable:
    def test_render_alignment(self):
        table = Table(title="T", headers=["a", "bbbb"])
        table.add_row(1, 2.5)
        table.add_row("o.o.m", 0)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bbbb" in lines[2]
        assert len({len(line) for line in lines[2:5]}) <= 2

    def test_notes_rendered(self):
        table = Table(title="T", headers=["x"])
        table.add_row(1)
        table.add_note("hello")
        assert "note: hello" in table.render()

    def test_column_access(self):
        table = Table(title="T", headers=["name", "value"])
        table.add_row("a", 1)
        table.add_row("b", 2)
        assert table.column("value") == [1, 2]

    def test_str(self):
        table = Table(title="T", headers=["x"])
        assert str(table).startswith("T")


class TestSeries:
    def test_line_length_checked(self):
        series = Series(title="S", x_label="k", x_values=[1, 2, 3])
        with pytest.raises(ValueError):
            series.add_line("bad", [1.0])

    def test_to_table(self):
        series = Series(title="S", x_label="k", x_values=[1, 10])
        series.add_line("algo", [0.5, 0.25])
        table = series.to_table()
        assert table.headers == ["k", "algo"]
        assert table.rows[1] == [10, 0.25]

    def test_render_contains_values(self):
        series = Series(title="S", x_label="k", x_values=[1])
        series.add_line("a", [0.125])
        assert "0.125" in series.render()


def test_render_all_joins():
    t1 = Table(title="One", headers=["x"])
    t2 = Table(title="Two", headers=["y"])
    text = render_all([t1, t2])
    assert "One" in text and "Two" in text
    assert "\n\n" in text


class TestMarkdown:
    def test_to_markdown_structure(self):
        table = Table(title="T", headers=["name", "value"])
        table.add_row("a", 0.5)
        table.add_note("hello")
        md = table.to_markdown()
        assert md.startswith("**T**")
        assert "| name | value |" in md
        assert "| a | 0.5 |" in md
        assert "*hello*" in md
