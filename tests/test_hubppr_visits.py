"""Tests for HubPPR and the visit-count walk estimator."""

import numpy as np
import pytest

from repro.baselines import HubPPRIndex
from repro.errors import ParameterError
from repro.graph import generators
from repro.walks import walk_terminal_mass, walk_visit_mass

ALPHA = 0.2


class TestHubPPR:
    @pytest.fixture(scope="class")
    def index(self, request):
        graph = generators.preferential_attachment(200, 3, seed=11)
        return HubPPRIndex(graph, num_hubs=8, num_walks=3_000,
                           r_max_b=1e-5, seed=1)

    @pytest.fixture(scope="class")
    def exact(self, index):
        from repro.baselines import ExactSolver

        return ExactSolver(index.graph, ALPHA)

    def test_hub_pair_accurate(self, index, exact):
        hub_s, hub_t = index.hubs[0], index.hubs[1]
        truth = exact.query(hub_s).estimates[hub_t]
        estimate, hits = index.query_pair(hub_s, hub_t)
        assert hits == {"forward_hub": True, "backward_hub": True}
        assert estimate == pytest.approx(truth, abs=0.01)

    def test_non_hub_pair_accurate(self, index, exact):
        non_hubs = [v for v in range(index.graph.n)
                    if v not in set(index.hubs)]
        s, t = non_hubs[0], index.hubs[0]
        truth = exact.query(s).estimates[t]
        estimate, hits = index.query_pair(s, t)
        assert not hits["forward_hub"]
        assert hits["backward_hub"]
        assert estimate == pytest.approx(truth, abs=0.02)

    def test_hubs_are_high_degree(self, index):
        degrees = index.graph.out_degrees + index.graph.in_degrees
        hub_min = min(int(degrees[h]) for h in index.hubs)
        non_hub_max = max(
            int(degrees[v]) for v in range(index.graph.n)
            if v not in set(index.hubs)
        )
        assert hub_min >= non_hub_max

    def test_index_metadata(self, index):
        assert index.preprocess_seconds > 0
        assert index.index_bytes == len(index.hubs) * 3 * index.graph.n * 8

    def test_ssrwr_adaptation(self, index, exact):
        truth = exact.query(0).estimates
        result = index.query(0, targets=range(25))
        assert np.abs(result.estimates[:25] - truth[:25]).max() < 0.03

    def test_validation(self, index):
        with pytest.raises(ParameterError):
            index.query_pair(-1, 0)
        with pytest.raises(ParameterError):
            HubPPRIndex(index.graph, num_hubs=-1)


class TestVisitEstimator:
    def test_unbiased(self, ba_graph, exact):
        truth = exact.query(0).estimates
        starts = np.zeros(40_000, dtype=np.int64)
        mass = walk_visit_mass(ba_graph, starts,
                               ALPHA, np.random.default_rng(0))
        empirical = mass / starts.size
        assert np.max(np.abs(empirical - truth)) < 0.01

    def test_unbiased_with_dangling(self, exact):
        from repro.graph import from_edges
        from repro.baselines import ExactSolver

        g = from_edges(5, [(0, 1), (1, 2), (2, 0), (1, 3), (3, 4)])
        truth = ExactSolver(g, ALPHA).query(0).estimates
        starts = np.zeros(40_000, dtype=np.int64)
        mass = walk_visit_mass(g, starts, ALPHA, np.random.default_rng(1))
        assert np.max(np.abs(mass / starts.size - truth)) < 0.01

    def test_lower_variance_than_terminal(self, ba_graph, exact):
        """The whole point: per-walk variance at low-pi nodes shrinks."""
        truth = exact.query(0).estimates
        # Pick a low-probability but reachable node.
        reachable = truth > 0
        target = int(np.argsort(truth + (~reachable))[5])
        batches = 40
        per_batch = 500
        terminal_means, visit_means = [], []
        for b in range(batches):
            rng = np.random.default_rng(b)
            starts = np.zeros(per_batch, dtype=np.int64)
            terminal_means.append(
                walk_terminal_mass(ba_graph, starts, ALPHA,
                                   rng)[target] / per_batch)
            rng = np.random.default_rng(b)
            visit_means.append(
                walk_visit_mass(ba_graph, starts, ALPHA,
                                rng)[target] / per_batch)
        assert np.var(visit_means) < np.var(terminal_means)

    def test_weights(self, tiny_graph):
        starts = np.array([5, 5])
        weights = np.array([0.3, 0.7])
        mass = walk_visit_mass(tiny_graph, starts, ALPHA,
                               np.random.default_rng(0), weights=weights)
        assert mass[5] == pytest.approx(1.0)

    def test_restart_policy_rejected(self, tiny_graph):
        g = tiny_graph.with_dangling("restart")
        with pytest.raises(ParameterError):
            walk_visit_mass(g, np.array([0]), ALPHA,
                            np.random.default_rng(0))


class TestVisitEstimatorIntegration:
    def test_resacc_visits_estimator_unbiased(self, ba_graph, exact):
        from repro.core import AccuracyParams, resacc

        truth = exact.query(0).estimates
        accuracy = AccuracyParams(eps=1.0, delta=0.05, p_f=0.2)
        total = np.zeros(ba_graph.n)
        trials = 30
        for seed in range(trials):
            total += resacc(ba_graph, 0, accuracy=accuracy, seed=seed,
                            estimator="visits").estimates
        assert np.max(np.abs(total / trials - truth)) < 0.02

    def test_visits_estimator_tighter_at_same_budget(self, ba_graph,
                                                     exact):
        from repro.core import AccuracyParams, resacc
        from repro.metrics import mean_abs_error

        truth = exact.query(0).estimates
        accuracy = AccuracyParams.paper_defaults(ba_graph.n)
        errors = {"terminal": [], "visits": []}
        for estimator in errors:
            for seed in range(5):
                result = resacc(ba_graph, 0, accuracy=accuracy, seed=seed,
                                estimator=estimator, walk_scale=0.2)
                errors[estimator].append(
                    mean_abs_error(truth, result.estimates))
        assert np.mean(errors["visits"]) <= np.mean(errors["terminal"])

    def test_invalid_estimator_rejected(self, ba_graph):
        from repro.walks import residue_weighted_walks
        from repro.errors import ParameterError

        residue = np.zeros(ba_graph.n)
        residue[0] = 0.5
        with pytest.raises(ParameterError):
            residue_weighted_walks(ba_graph, residue, 10, ALPHA,
                                   np.random.default_rng(0),
                                   estimator="psychic")
