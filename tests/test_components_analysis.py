"""Tests for connectivity utilities and the analytic cost models."""

import numpy as np
import pytest

from repro.analysis import (
    fora_cost,
    fora_optimal_cost,
    forward_search_cost,
    hhop_residue_bound,
    mc_cost,
    power_iteration_cost,
    resacc_remedy_cost,
)
from repro.core import AccuracyParams
from repro.core.params import fora_r_max
from repro.errors import ParameterError
from repro.graph import (
    from_edges,
    generators,
    is_weakly_connected,
    largest_component,
    weakly_connected_components,
    weakly_connected_labels,
)


class TestComponents:
    def test_single_component(self, ba_graph):
        assert is_weakly_connected(ba_graph)
        assert len(weakly_connected_components(ba_graph)) == 1

    def test_two_components(self):
        g = from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        comps = weakly_connected_components(g)
        assert len(comps) == 2
        assert sorted(comps[0]) == [0, 1, 2]
        assert sorted(comps[1]) == [3, 4, 5]

    def test_weak_vs_directed(self):
        # Directionality is ignored: a one-way chain is weakly connected.
        g = generators.path(5)
        assert is_weakly_connected(g)

    def test_isolated_nodes_are_singletons(self):
        g = from_edges(4, [(0, 1)])
        comps = weakly_connected_components(g)
        assert [len(c) for c in comps] == [2, 1, 1]

    def test_largest_component_extraction(self):
        g = from_edges(7, [(0, 1), (1, 2), (2, 0), (4, 5)])
        sub, mapping = largest_component(g)
        assert sub.n == 3
        assert sorted(mapping) == [0, 1, 2]
        assert sub.m == 3

    def test_labels_dense(self, web_graph):
        labels = weakly_connected_labels(web_graph)
        assert labels.min() >= 0
        assert set(labels) == set(range(labels.max() + 1))

    def test_matches_networkx(self, ba_graph):
        nx = pytest.importorskip("networkx")
        from repro.graph import to_networkx

        ours = [set(map(int, c))
                for c in weakly_connected_components(ba_graph)]
        theirs = [set(c) for c in nx.weakly_connected_components(
            to_networkx(ba_graph))]
        assert sorted(ours, key=min) == sorted(theirs, key=min)


class TestCostModels:
    @pytest.fixture
    def accuracy(self):
        return AccuracyParams(eps=0.5, delta=1e-3, p_f=1e-3)

    def test_fora_balanced_threshold_minimizes_model(self, ba_graph,
                                                     accuracy):
        optimum = fora_r_max(ba_graph, accuracy)
        best = fora_cost(ba_graph, accuracy, optimum)
        for factor in (0.1, 0.5, 2.0, 10.0):
            assert fora_cost(ba_graph, accuracy, optimum * factor) >= best

    def test_fora_optimal_closed_form(self, ba_graph, accuracy):
        optimum = fora_r_max(ba_graph, accuracy)
        assert fora_cost(ba_graph, accuracy, optimum) == pytest.approx(
            fora_optimal_cost(ba_graph, accuracy))

    def test_mc_dominates_fora(self, ba_graph, accuracy):
        assert mc_cost(accuracy) > fora_optimal_cost(ba_graph, accuracy)

    def test_remedy_cost_proportional_to_r_sum(self, accuracy):
        assert resacc_remedy_cost(0.2, accuracy) == pytest.approx(
            2 * resacc_remedy_cost(0.1, accuracy))
        assert resacc_remedy_cost(0.0, accuracy) == 0.0

    def test_hhop_bound_decreases_in_h(self):
        bounds = [hhop_residue_bound(0.2, h) for h in range(5)]
        assert bounds == sorted(bounds, reverse=True)
        assert bounds[0] == 1.0

    def test_power_cost_grows_with_precision(self, ba_graph):
        assert power_iteration_cost(ba_graph, 1e-12) > \
            power_iteration_cost(ba_graph, 1e-6)

    def test_forward_search_cost_inverse_in_threshold(self):
        assert forward_search_cost(0.2, 1e-6) == pytest.approx(
            10 * forward_search_cost(0.2, 1e-5))

    def test_models_track_measured_walk_gap(self, ba_graph, accuracy):
        """The remedy model ranks ResAcc's and FORA's measured walk
        budgets in the right order."""
        from repro.baselines import fora
        from repro.core import resacc

        res = resacc(ba_graph, 0, accuracy=accuracy, seed=1)
        frs = fora(ba_graph, 0, accuracy=accuracy, seed=1)
        model_res = resacc_remedy_cost(res.extras["r_sum"], accuracy)
        model_fora = resacc_remedy_cost(frs.extras["r_sum"], accuracy)
        assert model_res < model_fora
        assert res.walks_used < frs.walks_used

    def test_validation(self, ba_graph, accuracy):
        with pytest.raises(ParameterError):
            mc_cost(accuracy, alpha=0.0)
        with pytest.raises(ParameterError):
            fora_cost(ba_graph, accuracy, 0.0)
        with pytest.raises(ParameterError):
            power_iteration_cost(ba_graph, 2.0)
        with pytest.raises(ParameterError):
            hhop_residue_bound(0.2, -1)
        with pytest.raises(ParameterError):
            resacc_remedy_cost(-0.1, accuracy)


def test_components_on_random_graphs_match_union_find():
    rng = np.random.default_rng(0)
    for _ in range(10):
        n = int(rng.integers(2, 40))
        edges = np.column_stack([
            rng.integers(0, n, size=n), rng.integers(0, n, size=n)
        ])
        g = from_edges(n, edges)
        labels = weakly_connected_labels(g)
        parent = list(range(n))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for u, v in g.edges():
            parent[find(u)] = find(v)
        for u, v in g.edges():
            assert labels[u] == labels[v]
        roots = {find(v) for v in range(n)}
        assert len(roots) == labels.max() + 1
