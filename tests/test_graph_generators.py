"""Tests for the synthetic graph generators and dataset catalog."""

import numpy as np
import pytest

from repro.datasets import catalog
from repro.errors import ParameterError
from repro.graph import generators, graph_stats, hop_structure


class TestDeterministicFixtures:
    def test_ring(self):
        g = generators.ring(5)
        assert g.m == 5
        assert g.has_edge(4, 0)
        assert all(d == 1 for d in g.out_degrees)

    def test_path_has_dangling_tail(self):
        g = generators.path(4)
        assert g.m == 3
        assert list(g.dangling_nodes) == [3]

    def test_star_symmetric(self):
        g = generators.star(5)
        assert g.out_degree(0) == 4
        assert all(g.out_degree(v) == 1 for v in range(1, 5))

    def test_complete(self):
        g = generators.complete(4)
        assert g.m == 12
        assert not g.has_edge(2, 2)

    def test_grid(self):
        g = generators.grid(3, 3)
        # Interior node 4 touches 4 neighbours in both directions.
        assert g.out_degree(4) == 4
        assert g.m == 2 * (2 * 3 * 2)  # 12 undirected edges, both ways

    def test_grid_torus(self):
        g = generators.grid(3, 3, torus=True)
        assert all(d == 4 for d in g.out_degrees)

    def test_paper_figure1(self):
        g = generators.paper_figure1_graph()
        assert sorted(g.edges()) == [(0, 1), (0, 2), (1, 3), (2, 1)]

    def test_paper_figure3(self):
        g = generators.paper_figure3_graph()
        assert sorted(g.edges()) == [(0, 1), (1, 2), (2, 0)]

    def test_bad_params(self):
        with pytest.raises(ParameterError):
            generators.ring(1)
        with pytest.raises(ParameterError):
            generators.preferential_attachment(5, 10)
        with pytest.raises(ParameterError):
            generators.stochastic_block_model([3], p_in=0.1, p_out=0.5)


class TestRandomGenerators:
    def test_preferential_attachment_density_and_symmetry(self):
        g = generators.preferential_attachment(400, 4, seed=2)
        stats = graph_stats(g)
        assert 6 <= stats.density <= 8.5  # ~2 * edges_per_node
        for v in range(0, 400, 37):
            for u in g.out_neighbors(v):
                assert g.has_edge(int(u), v)

    def test_preferential_attachment_heavy_tail(self):
        g = generators.preferential_attachment(500, 3, seed=5)
        degrees = np.sort(g.out_degrees)[::-1]
        assert degrees[0] > 4 * degrees[len(degrees) // 2]

    def test_preferential_attachment_deterministic(self):
        a = generators.preferential_attachment(100, 3, seed=9)
        b = generators.preferential_attachment(100, 3, seed=9)
        assert a == b
        c = generators.preferential_attachment(100, 3, seed=10)
        assert a != c

    def test_directed_power_law_density(self):
        g = generators.directed_power_law(500, 8, seed=3)
        stats = graph_stats(g)
        assert 5 <= stats.density <= 9  # dedup eats a little

    def test_directed_power_law_hubs_get_in_edges(self):
        g = generators.directed_power_law(500, 8, seed=3)
        in_deg = g.in_degrees
        assert in_deg[:10].mean() > 5 * max(in_deg[250:].mean(), 0.1)

    def test_erdos_renyi(self):
        g = generators.erdos_renyi(300, 4, seed=1)
        stats = graph_stats(g)
        assert 3 <= stats.density <= 5

    def test_sbm_block_structure(self):
        sizes = [50, 50, 50]
        g = generators.stochastic_block_model(sizes, 0.2, 0.005, seed=4)
        labels = generators.block_membership(sizes)
        edges = g.edge_array()
        same = labels[edges[:, 0]] == labels[edges[:, 1]]
        assert same.mean() > 0.8

    def test_block_membership(self):
        labels = generators.block_membership([2, 3])
        assert list(labels) == [0, 0, 1, 1, 1]


class TestCatalog:
    def test_names_and_specs(self):
        assert "twitter" in catalog.names()
        entry = catalog.spec("twitter")
        assert entry.h == 2
        assert entry.paper_m == 1_500_000_000

    def test_unknown_dataset(self):
        with pytest.raises(ParameterError):
            catalog.spec("instagram")
        with pytest.raises(ParameterError):
            catalog.load("instagram")

    def test_load_density_matches_spec(self):
        for name in ("dblp", "web_stan"):
            g = catalog.load(name, scale=0.3)
            entry = catalog.spec(name)
            stats = graph_stats(g)
            assert stats.density == pytest.approx(entry.density, rel=0.35)

    def test_load_memoized(self):
        a = catalog.load("dblp", scale=0.25)
        b = catalog.load("dblp", scale=0.25)
        assert a is b

    def test_scale_changes_size(self):
        small = catalog.load("dblp", scale=0.1)
        big = catalog.load("dblp", scale=0.3)
        assert big.n > small.n

    def test_bench_h_and_default_h(self):
        assert catalog.default_h("dblp") == 3
        assert catalog.bench_h("dblp") == 1

    def test_facebook_blocks(self):
        g = catalog.load("facebook", scale=1.0)
        assert g.n >= 700
        assert graph_stats(g).density > 2


def test_hop_ball_fraction_documented_assumption():
    """The bench_h docstring claims a 1-hop ball covers a few percent."""
    g = catalog.load("pokec", scale=0.5)
    source = int(np.argmax(g.out_degrees < g.out_degrees.mean()))
    hops = hop_structure(g, source, 2)
    fraction = hops.hop_set(1).size / g.n
    assert fraction < 0.25
