"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.inverse import ExactSolver
from repro.graph import from_edges, generators


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_graph():
    """A 6-node graph with a cycle, a branch and a dangling node."""
    edges = [
        (0, 1), (1, 2), (2, 0),      # 3-cycle through the source
        (1, 3), (3, 4),              # branch
        (2, 4), (4, 5),              # node 5 is dangling
    ]
    return from_edges(6, edges)


@pytest.fixture
def ba_graph():
    """A 300-node preferential-attachment graph (symmetric)."""
    return generators.preferential_attachment(300, 3, seed=7)


@pytest.fixture
def web_graph():
    """A 250-node directed power-law graph (contains dangling nodes)."""
    return generators.directed_power_law(250, 5, seed=11)


@pytest.fixture
def exact(ba_graph):
    return ExactSolver(ba_graph, alpha=0.2)


def random_graph(seed, n=None, density=None):
    """Deterministic random graph helper for property tests."""
    gen = np.random.default_rng(seed)
    n = n if n is not None else int(gen.integers(2, 60))
    density = density if density is not None else float(gen.uniform(0.5, 4))
    num_edges = int(n * density)
    edges = np.column_stack([
        gen.integers(0, n, size=num_edges),
        gen.integers(0, n, size=num_edges),
    ])
    return from_edges(n, edges)
