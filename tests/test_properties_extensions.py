"""Property-based tests for the extension subsystems (weighted, PPR,
SCC, builder)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ppr import exact_ppr, normalize_preference
from repro.graph import (
    GraphBuilder,
    from_edges,
    strongly_connected_labels,
    weakly_connected_labels,
)
from repro.weighted import (
    from_weighted_edges,
    weighted_forward_push,
    weighted_init_state,
    weighted_power_iteration,
)

ALPHA = 0.2

common = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def unweighted_graphs(draw, min_n=2, max_n=30):
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    num_edges = draw(st.integers(min_value=0, max_value=3 * n))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=num_edges, max_size=num_edges,
    ))
    return from_edges(n, edges)


@st.composite
def weighted_graphs(draw, min_n=2, max_n=25):
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    num_edges = draw(st.integers(min_value=0, max_value=3 * n))
    triples = draw(st.lists(
        st.tuples(
            st.integers(0, n - 1),
            st.integers(0, n - 1),
            st.floats(min_value=0.01, max_value=10.0,
                      allow_nan=False, allow_infinity=False),
        ),
        min_size=num_edges, max_size=num_edges,
    ))
    return from_weighted_edges(n, triples)


# ----------------------------------------------------------------------
# Weighted kernels
# ----------------------------------------------------------------------
@common
@given(weighted_graphs(), st.integers(0, 10_000))
def test_weighted_push_conserves_mass(wg, seed):
    source = seed % wg.n
    reserve, residue = weighted_init_state(wg, source)
    weighted_forward_push(wg, reserve, residue, ALPHA, 1e-4)
    assert reserve.sum() + residue.sum() == pytest.approx(1.0, abs=1e-9)
    assert np.all(reserve >= 0) and np.all(residue >= -1e-15)


@common
@given(weighted_graphs(max_n=15), st.integers(0, 10_000))
def test_weighted_power_is_distribution(wg, seed):
    source = seed % wg.n
    result = weighted_power_iteration(wg, source, tol=1e-12)
    assert result.estimates.sum() == pytest.approx(1.0, abs=1e-9)
    assert result.estimates.min() >= 0


@common
@given(weighted_graphs(max_n=15), st.integers(0, 10_000))
def test_weighted_push_invariant_against_power(wg, seed):
    source = seed % wg.n
    reserve, residue = weighted_init_state(wg, source)
    weighted_forward_push(wg, reserve, residue, ALPHA, 1e-3)
    combined = reserve.copy()
    for v in np.flatnonzero(residue > 0):
        combined += residue[v] * weighted_power_iteration(
            wg, int(v), tol=1e-12).estimates
    truth = weighted_power_iteration(wg, source, tol=1e-12).estimates
    assert np.max(np.abs(combined - truth)) < 1e-8


@common
@given(weighted_graphs())
def test_alias_tables_probabilities_valid(wg):
    prob, alias = wg.alias_tables()
    assert np.all(prob >= 0) and np.all(prob <= 1.0 + 1e-12)
    if wg.m:
        assert alias.min() >= 0 and alias.max() < wg.m


# ----------------------------------------------------------------------
# Preference-vector PPR
# ----------------------------------------------------------------------
@common
@given(unweighted_graphs(max_n=15),
       st.lists(st.integers(0, 10_000), min_size=1, max_size=4),
       st.integers(0, 10_000))
def test_exact_ppr_linearity(g, raw_nodes, extra_seed):
    del extra_seed
    nodes = [v % g.n for v in raw_nodes]
    combined = exact_ppr(g, nodes, alpha=ALPHA)
    vector = normalize_preference(g, nodes)
    expected = np.zeros(g.n)
    for v in np.flatnonzero(vector > 0):
        expected += vector[v] * exact_ppr(g, [int(v)], alpha=ALPHA)
    assert np.max(np.abs(combined - expected)) < 1e-9


@common
@given(unweighted_graphs(max_n=15),
       st.lists(st.integers(0, 10_000), min_size=1, max_size=4))
def test_exact_ppr_is_distribution(g, raw_nodes):
    nodes = [v % g.n for v in raw_nodes]
    pi = exact_ppr(g, nodes, alpha=ALPHA)
    assert pi.sum() == pytest.approx(1.0, abs=1e-9)
    assert pi.min() >= 0


# ----------------------------------------------------------------------
# Connectivity structure
# ----------------------------------------------------------------------
@common
@given(unweighted_graphs())
def test_scc_refines_weak_components(g):
    weak = weakly_connected_labels(g)
    strong = strongly_connected_labels(g)
    # Nodes in the same SCC must share a weak component.
    for label in range(int(strong.max()) + 1):
        members = np.flatnonzero(strong == label)
        assert len(set(weak[members].tolist())) == 1


@common
@given(unweighted_graphs())
def test_scc_edges_never_point_to_larger_label(g):
    labels = strongly_connected_labels(g)
    for u, v in g.edges():
        if labels[u] != labels[v]:
            # Tarjan labels are reverse-topological.
            assert labels[u] > labels[v]


@common
@given(unweighted_graphs())
def test_builder_roundtrip_any_graph(g):
    rebuilt = GraphBuilder(graph=g).build()
    assert rebuilt == g


@common
@given(unweighted_graphs(),
       st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)),
                max_size=8))
def test_builder_add_remove_inverse(g, extra_edges):
    builder = GraphBuilder(graph=g)
    added = []
    for u, v in extra_edges:
        u, v = u % g.n, v % g.n
        if u == v:
            continue
        if builder.add_edge(u, v):
            added.append((u, v))
    for u, v in added:
        assert builder.remove_edge(u, v)
    assert builder.build() == g


# ----------------------------------------------------------------------
# Result and report invariants
# ----------------------------------------------------------------------
@common
@given(unweighted_graphs(max_n=20), st.integers(0, 10_000),
       st.integers(0, 100))
def test_serialize_roundtrip_any_result(g, seed, rng_seed):
    from repro.core import AccuracyParams, load_result, resacc, save_result
    import tempfile
    import pathlib

    source = seed % g.n
    acc = AccuracyParams(eps=0.5, delta=0.1, p_f=0.1)
    result = resacc(g, source, accuracy=acc, seed=rng_seed)
    with tempfile.TemporaryDirectory() as tmp:
        path = save_result(result, pathlib.Path(tmp) / "r.npz")
        loaded = load_result(path)
    assert np.array_equal(loaded.estimates, result.estimates)
    assert loaded.source == result.source


@common
@given(st.lists(st.floats(min_value=0, max_value=1, allow_nan=False),
                min_size=2, max_size=40),
       st.lists(st.floats(min_value=0, max_value=1, allow_nan=False),
                min_size=2, max_size=40),
       st.integers(1, 50))
def test_ndcg_permutation_invariance_of_ties(truth_list, est_list, k):
    from repro.metrics import ndcg_at_k

    n = min(len(truth_list), len(est_list))
    truth = np.array(truth_list[:n])
    est = np.array(est_list[:n])
    base = ndcg_at_k(truth, est, k)
    # Scaling by 2 is exact in floating point, so the ranking (including
    # its tie structure) is bit-identical.  (An additive shift would NOT
    # be: it can collapse near-ties and legitimately change the order.)
    scaled = ndcg_at_k(truth, est * 2.0, k)
    assert base == pytest.approx(scaled)


@common
@given(st.lists(st.floats(min_value=1e-9, max_value=1e3,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=30))
def test_boxplot_summary_ordering(values):
    from repro.metrics import boxplot_summary

    summary = boxplot_summary(values)
    assert summary.minimum <= summary.q1 <= summary.median \
        <= summary.q3 <= summary.maximum
    assert summary.iqr >= 0


# ----------------------------------------------------------------------
# h-HopFWD updating-phase invariant (Appendix-Q scaler)
# ----------------------------------------------------------------------

def test_hhop_updating_phase_conserves_unit_mass():
    """After h-HopFWD's updating phase, ``sum(reserve) + sum(residue)``
    must equal 1 to within 1e-12.

    This pins the Appendix-Q geometric scaler
    ``S = (1 - r1^T) / (1 - r1)`` (DESIGN.md): the form the paper prints
    in Algorithm 3, ``(1 - r1^(T-1)) / (1 - r1)``, breaks exact mass
    conservation, so any regression toward it fails here.  Driven by
    plain ``random`` (no hypothesis) so the trial set is a fixed,
    reproducible sweep over graph shapes, hop depths and thresholds.
    """
    import random as plain_random

    from repro.core.hhop import h_hop_forward
    from repro.push import init_state

    rng = plain_random.Random(20260807)
    for trial in range(40):
        n = rng.randint(2, 60)
        num_edges = rng.randint(0, 4 * n)
        edges = [(rng.randrange(n), rng.randrange(n))
                 for _ in range(num_edges)]
        dangling = rng.choice(["absorb", "restart"])
        graph = from_edges(n, edges, dangling=dangling)
        source = rng.randrange(n)
        h = rng.randint(0, 3)
        r_max_hop = rng.choice([1e-14, 1e-10, 1e-6])
        method = rng.choice(["frontier", "queue"])
        reserve, residue = init_state(graph, source)
        outcome = h_hop_forward(graph, source, ALPHA, r_max_hop, h,
                                reserve, residue, method=method)
        total = float(reserve.sum() + residue.sum())
        assert abs(total - 1.0) <= 1e-12, (
            f"trial {trial}: mass {total} (n={n}, m={graph.m}, h={h}, "
            f"r_max_hop={r_max_hop}, source={source}, "
            f"dangling={dangling}, scaler={outcome.scaler}, "
            f"T={outcome.num_rounds})"
        )
        assert outcome.num_rounds >= 1
        # The geometric sum of T terms of r1 < 1 is always >= 1.
        assert outcome.scaler >= 1.0
