"""Tests for the dynamic-graph mutation helpers.

Covers the single-edge delta edits (`insert_edge` / `delete_edge`) --
including their byte-identity with a full `from_edges` rebuild -- and
the bulk helpers' edge cases: multiset `delete_edges` semantics on
parallel edges, empty update lists, `add_edges(grow=True)` node growth,
and the `delete_nodes(relabel=True)` id-mapping round trip.
"""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    CSRGraph,
    add_edges,
    delete_edge,
    delete_edges,
    delete_nodes,
    from_edges,
    insert_edge,
)
from repro.graph import generators


def multigraph():
    """3 nodes, parallel edges: 0->1 (x2), 1->2 (x3), 2->0."""
    return CSRGraph(
        3,
        np.array([0, 2, 5, 6], dtype=np.int64),
        np.array([1, 1, 2, 2, 2, 0], dtype=np.int64),
        validate=False,
    )


class TestSingleEdgeDelta:
    def test_insert_matches_full_rebuild(self):
        g = generators.preferential_attachment(60, 2, seed=3)
        missing = [(u, v) for u in range(8) for v in range(8)
                   if u != v and not g.has_edge(u, v)]
        for u, v in missing[:5]:
            delta = insert_edge(g, u, v)
            rebuilt = from_edges(
                g.n, np.vstack([g.edge_array(), [[u, v]]]),
                dangling=g.dangling,
            )
            np.testing.assert_array_equal(delta.indptr, rebuilt.indptr)
            np.testing.assert_array_equal(delta.indices, rebuilt.indices)

    def test_delete_matches_full_rebuild(self):
        g = generators.preferential_attachment(60, 2, seed=3)
        edges = g.edge_array()
        for u, v in edges[:5]:
            delta = delete_edge(g, u, v)
            keep = ~((edges[:, 0] == u) & (edges[:, 1] == v))
            rebuilt = from_edges(g.n, edges[keep], dangling=g.dangling)
            np.testing.assert_array_equal(delta.indptr, rebuilt.indptr)
            np.testing.assert_array_equal(delta.indices, rebuilt.indices)

    def test_insert_then_delete_round_trips(self):
        g = generators.preferential_attachment(40, 2, seed=1)
        u, v = next((u, v) for u in range(10) for v in range(10)
                    if u != v and not g.has_edge(u, v))
        back = delete_edge(insert_edge(g, u, v), u, v)
        np.testing.assert_array_equal(back.indptr, g.indptr)
        np.testing.assert_array_equal(back.indices, g.indices)

    def test_insert_rejects_self_loop_and_out_of_range(self):
        g = from_edges(3, [(0, 1)])
        with pytest.raises(GraphFormatError):
            insert_edge(g, 1, 1)
        with pytest.raises(GraphFormatError):
            insert_edge(g, 0, 3)

    def test_delete_missing_edge_raises(self):
        g = from_edges(3, [(0, 1)])
        with pytest.raises(GraphFormatError):
            delete_edge(g, 1, 2)

    def test_insert_on_multigraph_adds_a_copy(self):
        g = multigraph()
        g2 = insert_edge(g, 0, 1)
        assert g2.m == g.m + 1
        assert list(g2.out_neighbors(0)) == [1, 1, 1]

    def test_delete_on_multigraph_removes_one_copy(self):
        g = multigraph()
        g2 = delete_edge(g, 1, 2)
        assert g2.m == g.m - 1
        assert list(g2.out_neighbors(1)) == [2, 2]


class TestDeleteEdgesMultiset:
    def test_one_listed_occurrence_removes_one_copy(self):
        g = multigraph()
        g2 = delete_edges(g, [(0, 1)])
        assert g2.m == 5
        assert list(g2.out_neighbors(0)) == [1]

    def test_listing_twice_removes_both_copies(self):
        g = multigraph()
        g2 = delete_edges(g, [(0, 1), (0, 1)])
        assert g2.m == 4
        assert list(g2.out_neighbors(0)) == []

    def test_requests_beyond_multiplicity_are_capped(self):
        g = multigraph()
        g2 = delete_edges(g, [(2, 0)] * 5)
        assert g2.m == 5
        assert list(g2.out_neighbors(2)) == []

    def test_missing_and_out_of_range_edges_ignored(self):
        g = multigraph()
        g2 = delete_edges(g, [(0, 2), (-1, 0), (2, 99)])
        assert g2.m == g.m
        np.testing.assert_array_equal(g2.indices, g.indices)

    def test_matches_naive_reference_on_random_multigraph(self):
        rng = np.random.default_rng(7)
        n = 12
        edges = rng.integers(0, n, size=(80, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        order = np.lexsort((edges[:, 1], edges[:, 0]))
        edges = edges[order]
        counts = np.bincount(edges[:, 0], minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        g = CSRGraph(n, indptr, edges[:, 1].copy(), validate=False)
        drops = [tuple(e) for e in rng.choice(edges, size=30)]
        drops += [(0, 1), (n - 1, 0)]  # maybe-absent edges

        remaining = [tuple(e) for e in g.edge_array()]
        for edge in drops:
            if edge in remaining:
                remaining.remove(edge)  # one copy per listed occurrence
        expected = sorted(remaining)

        g2 = delete_edges(g, drops)
        assert sorted(tuple(e) for e in g2.edge_array()) == expected


class TestEmptyUpdates:
    def test_delete_edges_empty_preserves_multiplicity(self):
        g = multigraph()
        g2 = delete_edges(g, [])
        assert g2.m == g.m
        np.testing.assert_array_equal(g2.indptr, g.indptr)
        np.testing.assert_array_equal(g2.indices, g.indices)

    def test_add_edges_empty_is_identity(self):
        g = generators.preferential_attachment(30, 2, seed=0)
        g2 = add_edges(g, [])
        assert g2.n == g.n
        np.testing.assert_array_equal(g2.indptr, g.indptr)
        np.testing.assert_array_equal(g2.indices, g.indices)

    def test_delete_nodes_empty_is_identity(self):
        g = generators.preferential_attachment(30, 2, seed=0)
        g2 = delete_nodes(g, [])
        assert g2.n == g.n
        assert g2.m == g.m


class TestGrowthAndRelabel:
    def test_add_edges_grow_extends_node_count(self):
        g = from_edges(3, [(0, 1), (1, 2)])
        g2 = add_edges(g, [(2, 5)], grow=True)
        assert g2.n == 6
        assert g2.has_edge(2, 5)
        assert g2.has_edge(0, 1)

    def test_add_edges_without_grow_rejects_new_ids(self):
        g = from_edges(3, [(0, 1)])
        with pytest.raises(GraphFormatError):
            add_edges(g, [(0, 7)])

    def test_delete_nodes_relabel_round_trip(self):
        g = generators.preferential_attachment(30, 2, seed=5)
        doomed = [3, 11, 20]
        g2, survivors = delete_nodes(g, doomed, relabel=True)
        assert g2.n == g.n - len(doomed)
        assert not set(doomed) & set(survivors.tolist())
        # Every surviving edge maps back to an original edge between
        # surviving endpoints, and every such original edge is present.
        back = {(int(survivors[u]), int(survivors[v]))
                for u, v in g2.edge_array()}
        doomed_set = set(doomed)
        original = {(int(u), int(v)) for u, v in g.edge_array()
                    if u not in doomed_set and v not in doomed_set}
        assert back == original
