"""Unit tests for the CSR graph representation."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import CSRGraph, check_consistency, from_edges, graph_stats


class TestConstruction:
    def test_basic_edges(self):
        g = from_edges(3, [(0, 1), (1, 2), (0, 2)])
        assert g.n == 3
        assert g.m == 3
        assert list(g.out_neighbors(0)) == [1, 2]
        assert list(g.out_neighbors(1)) == [2]
        assert list(g.out_neighbors(2)) == []

    def test_duplicate_edges_removed(self):
        g = from_edges(2, [(0, 1), (0, 1), (0, 1)])
        assert g.m == 1

    def test_self_loops_dropped_by_default(self):
        g = from_edges(3, [(0, 0), (0, 1), (2, 2)])
        assert g.m == 1
        assert g.has_edge(0, 1)

    def test_self_loops_raise_when_requested(self):
        with pytest.raises(GraphFormatError):
            from_edges(2, [(0, 0)], drop_self_loops=False)

    def test_out_of_range_endpoint(self):
        with pytest.raises(GraphFormatError):
            from_edges(2, [(0, 5)])

    def test_symmetrize(self):
        g = from_edges(3, [(0, 1), (1, 2)], symmetrize=True)
        assert g.m == 4
        assert g.has_edge(1, 0)
        assert g.has_edge(2, 1)

    def test_empty_graph(self):
        g = from_edges(4, [])
        assert g.n == 4
        assert g.m == 0
        assert list(g.dangling_nodes) == [0, 1, 2, 3]

    def test_invalid_dangling_policy(self):
        with pytest.raises(GraphFormatError):
            from_edges(2, [(0, 1)], dangling="bogus")

    def test_direct_constructor_validates_indptr(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(2, np.array([0, 2, 1]), np.array([1, 0]))

    def test_direct_constructor_rejects_self_loop(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(2, np.array([0, 1, 2]), np.array([0, 1]))


class TestAccessors:
    def test_degrees(self, tiny_graph):
        assert list(tiny_graph.out_degrees) == [1, 2, 2, 1, 1, 0]
        assert tiny_graph.out_degree(1) == 2
        assert list(tiny_graph.dangling_nodes) == [5]

    def test_in_neighbors(self, tiny_graph):
        assert sorted(tiny_graph.in_neighbors(4)) == [2, 3]
        assert sorted(tiny_graph.in_neighbors(0)) == [2]

    def test_in_degrees(self, tiny_graph):
        assert int(tiny_graph.in_degrees.sum()) == tiny_graph.m

    def test_has_edge(self, tiny_graph):
        assert tiny_graph.has_edge(0, 1)
        assert not tiny_graph.has_edge(1, 0)

    def test_edges_iteration_matches_edge_array(self, tiny_graph):
        listed = list(tiny_graph.edges())
        array = [tuple(row) for row in tiny_graph.edge_array()]
        assert listed == array
        assert len(listed) == tiny_graph.m


class TestReverse:
    def test_reverse_roundtrip(self, ba_graph):
        rev = ba_graph.reverse()
        assert rev.m == ba_graph.m
        double = rev.reverse()
        fwd = sorted(ba_graph.edges())
        assert sorted(double.edges()) == fwd

    def test_consistency_check(self, ba_graph, web_graph, tiny_graph):
        for g in (ba_graph, web_graph, tiny_graph):
            assert check_consistency(g)

    def test_with_dangling_shares_arrays(self, tiny_graph):
        restart = tiny_graph.with_dangling("restart")
        assert restart.dangling == "restart"
        assert restart.indptr is tiny_graph.indptr
        assert restart.m == tiny_graph.m


class TestStats:
    def test_stats(self, tiny_graph):
        stats = graph_stats(tiny_graph)
        assert stats.n == 6
        assert stats.m == 7
        assert stats.num_dangling == 1
        assert stats.max_out_degree == 2
        assert stats.density == pytest.approx(7 / 6)

    def test_equality(self):
        a = from_edges(3, [(0, 1), (1, 2)])
        b = from_edges(3, [(0, 1), (1, 2)])
        c = from_edges(3, [(0, 1)])
        assert a == b
        assert a != c
