"""Micro-scale smoke tests for every registered experiment.

The benchmarks run the experiments at the fast configuration; these
tests run them at a *micro* configuration (tiny graphs, one source, very
relaxed delta) so that ``pytest tests/`` alone exercises every
experiment code path.  Only structural properties are asserted --
qualitative shape assertions live in ``benchmarks/``.
"""

import pytest

from repro.bench import ALL_EXPERIMENTS, BenchConfig
from repro.bench.report import Series, Table

MICRO = BenchConfig(scale=0.06, num_sources=1, delta_scale=500.0,
                    seed=0, fast=True)

#: Experiments that are heavier even at micro scale get their own marks.
SLOWER = {"fig14-15", "fig18-20", "fig23", "table4"}


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_experiment_runs_and_produces_artifacts(name):
    artifacts = ALL_EXPERIMENTS[name](MICRO)
    assert artifacts, f"{name} produced no artifacts"
    for artifact in artifacts:
        assert isinstance(artifact, (Table, Series))
        rendered = artifact.render()
        assert artifact.title in rendered
        if isinstance(artifact, Table):
            assert artifact.rows, f"{name}: empty table {artifact.title}"
        else:
            assert artifact.lines, f"{name}: empty series {artifact.title}"


def test_micro_config_is_cheap():
    graph = __import__("repro.datasets", fromlist=["load"]).load(
        "friendster", scale=MICRO.scale, seed=MICRO.seed
    )
    # The largest micro graph stays below a few thousand nodes.
    assert graph.n < 3_000
