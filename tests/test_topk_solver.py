"""Property tests for the early-terminating top-k solver.

The contract under test (``docs/topk.md``):

* whenever the solver reports ``separated=True`` its node *set* is
  exactly the full solve's top-k set (same seed, same accuracy) -- no
  approximation sneaks in through the fast path;
* the per-node confidence envelope ``[lower, upper]`` contains the
  exact RWR score for every node (the bounds are what the pruning and
  the separation certificate rest on);
* answers are pure functions of ``(graph, source, k, accuracy, seed,
  mode)`` -- repeated calls are byte-identical;
* ties are broken by ascending node id everywhere
  (:func:`repro.core.result.top_k_order` is the library-wide
  contract).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.inverse import ExactSolver
from repro.core import AccuracyParams, resacc, top_k_order, topk_solve
from repro.core.result import SSRWRResult
from repro.core.topk_solver import TopKAnswer, answer_top_k
from repro.errors import ParameterError
from repro.graph import from_edges, generators


def _parallel_edge_graph():
    """Edge list with deliberate duplicates (the CSR builder must
    collapse them; the solver sees a simple graph either way)."""
    base = [(u, (u * 7 + 3) % 97) for u in range(97)]
    base += [(u, (u * 3 + 11) % 97) for u in range(97)]
    edges = base + base[::2] + base[:40]     # parallel copies
    return from_edges(97, [e for e in edges if e[0] != e[1]],
                      symmetrize=True)


GRAPHS = {
    "ba": lambda: generators.preferential_attachment(300, 3, seed=7),
    "power_law": lambda: generators.directed_power_law(250, 5, seed=11),
    "grid": lambda: generators.grid(12, 12, torus=True),
    "parallel_edge": _parallel_edge_graph,
}

#: Three accuracy regimes: the paper default, a relaxed delta, and a
#: tightened eps (where the fast path's advantage is largest).
ACCURACIES = {
    "paper": lambda n: AccuracyParams.paper_defaults(n),
    "loose-delta": lambda n: AccuracyParams.paper_defaults(
        n, delta_scale=10.0),
    "tight-eps": lambda n: AccuracyParams.paper_defaults(
        n, eps=0.2, delta_scale=5.0),
}

KS = (1, 10, 100)


# ----------------------------------------------------------------------
# Property harness: shapes x k x accuracies
# ----------------------------------------------------------------------
class TestTopKProperties:
    @pytest.mark.parametrize("accuracy_name", sorted(ACCURACIES))
    @pytest.mark.parametrize("k", KS)
    @pytest.mark.parametrize("graph_name", sorted(GRAPHS))
    def test_separated_set_matches_full_solve(self, graph_name, k,
                                              accuracy_name):
        """separated=True => exact set agreement with the full solve;
        otherwise (auto mode) the fallback IS the full solve."""
        graph = GRAPHS[graph_name]()
        accuracy = ACCURACIES[accuracy_name](graph.n)
        source = 3
        answer = answer_top_k(graph, source, k, accuracy=accuracy,
                              seed=21, mode="auto")
        full = resacc(graph, source, accuracy=accuracy, seed=21)
        full_nodes, full_values = full.top_k(k)
        assert isinstance(answer, TopKAnswer)
        assert answer.k == min(k, graph.n)
        assert len(answer.nodes) == answer.k
        if answer.separated:
            assert answer.path == "topk"
            assert set(answer.nodes.tolist()) == set(full_nodes.tolist()), (
                f"{graph_name}/k={k}/{accuracy_name}: separated top-k set "
                f"diverges from the full solve"
            )
        else:
            # auto mode fell back to the full solve with the same seed:
            # byte-identical nodes and values.
            assert answer.path == "full"
            assert answer.nodes.tobytes() == full_nodes.tobytes()
            assert answer.values.tobytes() == full_values.tobytes()

    @pytest.mark.parametrize("k", KS)
    @pytest.mark.parametrize("graph_name", sorted(GRAPHS))
    def test_bounds_contain_exact_scores(self, graph_name, k):
        """The advertised envelope holds: lower <= pi(s, v) <= upper
        for the returned nodes, and lower <= value <= upper."""
        graph = GRAPHS[graph_name]()
        accuracy = ACCURACIES["loose-delta"](graph.n)
        answer = topk_solve(graph, 3, k, accuracy=accuracy, seed=5)
        truth = ExactSolver(graph).query(3).estimates
        nodes = answer.nodes
        assert np.all(answer.lower <= answer.values + 1e-12)
        assert np.all(answer.values <= answer.upper + 1e-12)
        assert np.all(answer.lower - 1e-12 <= truth[nodes]), (
            f"{graph_name}/k={k}: lower bound above the exact score"
        )
        assert np.all(truth[nodes] <= answer.upper + 1e-12), (
            f"{graph_name}/k={k}: upper bound below the exact score"
        )

    @pytest.mark.parametrize("graph_name", sorted(GRAPHS))
    def test_repeated_calls_are_byte_identical(self, graph_name):
        graph = GRAPHS[graph_name]()
        accuracy = ACCURACIES["paper"](graph.n)
        first = answer_top_k(graph, 7, 10, accuracy=accuracy, seed=13)
        second = answer_top_k(graph, 7, 10, accuracy=accuracy, seed=13)
        assert first.separated == second.separated
        assert first.path == second.path
        assert first.nodes.tobytes() == second.nodes.tobytes()
        assert first.values.tobytes() == second.values.tobytes()
        assert first.lower.tobytes() == second.lower.tobytes()
        assert first.upper.tobytes() == second.upper.tobytes()
        assert first.walks_used == second.walks_used
        assert first.pushes == second.pushes


# ----------------------------------------------------------------------
# Bookkeeping and edge cases
# ----------------------------------------------------------------------
class TestTopKAnswer:
    def test_k_at_least_n_is_trivially_separated(self, tiny_graph):
        answer = topk_solve(tiny_graph, 0, tiny_graph.n + 5, seed=1)
        assert answer.separated is True
        assert answer.k == tiny_graph.n
        assert answer.bound_gap == float("inf")
        assert sorted(answer.nodes.tolist()) == list(range(tiny_graph.n))

    def test_answer_reports_work_spent(self):
        graph = GRAPHS["ba"]()
        accuracy = ACCURACIES["tight-eps"](graph.n)
        answer = topk_solve(graph, 0, 1, accuracy=accuracy, seed=2)
        assert answer.pushes > 0
        assert answer.rounds >= 1
        assert answer.bound_width is not None and answer.bound_width >= 0
        assert answer.extras["full_walk_budget"] >= answer.walks_used

    def test_tuple_unpacking_back_compat(self):
        graph = GRAPHS["grid"]()
        answer = answer_top_k(graph, 0, 5, seed=3)
        nodes, values = answer
        assert nodes.tobytes() == answer.nodes.tobytes()
        assert values.tobytes() == answer.values.tobytes()

    def test_fast_mode_never_falls_back(self):
        graph = GRAPHS["power_law"]()
        answer = answer_top_k(graph, 2, 50, seed=4, mode="fast",
                              max_rounds=2)
        assert answer.path == "topk"

    def test_full_mode_matches_resacc(self):
        graph = GRAPHS["ba"]()
        accuracy = ACCURACIES["paper"](graph.n)
        answer = answer_top_k(graph, 9, 5, accuracy=accuracy, seed=6,
                              mode="full")
        want_nodes, want_values = resacc(
            graph, 9, accuracy=accuracy, seed=6).top_k(5)
        assert answer.path == "full"
        assert answer.separated is False
        assert answer.nodes.tobytes() == want_nodes.tobytes()
        assert answer.values.tobytes() == want_values.tobytes()

    def test_invalid_mode_raises(self, tiny_graph):
        with pytest.raises(ParameterError):
            answer_top_k(tiny_graph, 0, 2, mode="warp")

    def test_invalid_k_raises(self, tiny_graph):
        with pytest.raises(ParameterError):
            topk_solve(tiny_graph, 0, 0)
        with pytest.raises(ParameterError):
            topk_solve(tiny_graph, 0, -3)


# ----------------------------------------------------------------------
# Tie-breaking: ascending node id, everywhere
# ----------------------------------------------------------------------
class TestTieBreaking:
    def test_top_k_order_breaks_ties_by_node_id(self):
        estimates = np.array([0.25, 0.5, 0.25, 0.5, 0.25])
        order = top_k_order(estimates, 4)
        assert order.tolist() == [1, 3, 0, 2]

    def test_result_top_k_uses_shared_contract(self):
        estimates = np.array([0.2, 0.2, 0.2, 0.4])
        result = SSRWRResult(source=0, estimates=estimates, alpha=0.2)
        nodes, values = result.top_k(3)
        assert nodes.tolist() == [3, 0, 1]
        assert values.tolist() == [0.4, 0.2, 0.2]

    def test_exact_ties_listed_in_ascending_id_order(self):
        """Edgeless graph: every non-source score is exactly 0, so the
        listing after the source must be 0, 1, 2, ... by node id."""
        graph = from_edges(8, [])
        answer = topk_solve(graph, 3, 5, seed=8)
        assert answer.nodes[0] == 3              # pi(s, s) = 1
        assert answer.nodes[1:].tolist() == [0, 1, 2, 4]
        full = resacc(graph, 3, seed=8)
        nodes, _ = full.top_k(5)
        assert nodes.tolist() == answer.nodes.tolist()
