"""Incremental dynamic-graph serving: retention, repair, and the bound.

The engineered graph separates the two regimes the offset bound
distinguishes:

* a *broadcaster* node with a large out-degree and no score mass from
  the query sources -- editing its out-row changes each transition row
  by only ``2/d`` and touches no probability the cached answers care
  about, so entries survive;
* a *community* cycle holding the sources -- editing a cycle node's
  out-row (degree 1 -> 2, L1 change 1) under heavy score mass blows
  every entry's budget, so everything is evicted and repaired in the
  background.

Retained answers are property-tested against a fresh exact solve on the
post-edit graph: the offset bound is only trusted after Definition 1 is
re-verified the hard way.
"""

from __future__ import annotations

import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.baselines.power import power_iteration
from repro.core.params import AccuracyParams
from repro.graph import from_edges, generators
from repro.obs.trace import DeadlineTrace, QueryTrace
from repro.serving import ConcurrentQueryEngine, SingleFlightCache
from repro.serving import retention

JOIN_TIMEOUT = 30.0

BROADCASTER = 0
BROADCAST_DEGREE = 100
CYCLE = list(range(101, 120))
SOURCES = [101, 107, 113]


def broadcaster_graph():
    """120 nodes: broadcaster 0 <-> leaves 1..100, plus a directed
    cycle 101 -> ... -> 119 -> 101 (disconnected from the broadcaster,
    so cycle sources put zero mass on node 0)."""
    edges = []
    for leaf in range(1, BROADCAST_DEGREE + 1):
        edges.append((BROADCASTER, leaf))
        edges.append((leaf, BROADCASTER))
    for a, b in zip(CYCLE, CYCLE[1:] + CYCLE[:1]):
        edges.append((a, b))
    return from_edges(120, edges)


def make_engine(graph, **kwargs):
    kwargs.setdefault("accuracy", AccuracyParams.paper_defaults(graph.n))
    kwargs.setdefault("max_workers", 2)
    kwargs.setdefault("seed", 0)
    return ConcurrentQueryEngine(graph, incremental=True, **kwargs)


def assert_contract(result, exact, accuracy):
    """Definition 1: relative error <= eps wherever exact > delta."""
    heavy = exact > accuracy.delta
    errors = np.abs(result.estimates[heavy] - exact[heavy])
    assert np.all(errors <= accuracy.eps * exact[heavy])


def wait_for_repairs(svc, count, *, timeout=JOIN_TIMEOUT):
    deadline = time.monotonic() + timeout
    while svc.stats.entries_repaired < count:
        assert time.monotonic() < deadline, (
            f"only {svc.stats.entries_repaired}/{count} repairs landed"
        )
        time.sleep(0.01)


class TestRetention:
    def test_low_impact_edit_retains_cached_entries(self):
        with make_engine(broadcaster_graph()) as svc:
            svc.query_batch(SOURCES)
            assert svc.add_edge(BROADCASTER, CYCLE[-1])
            last = svc.stats.extras["last_mutation"]
            assert last["incremental"] is True
            assert last["retained"] == len(SOURCES)
            assert last["evicted"] == 0
            assert sorted(last["retained_sources"]) == SOURCES
            assert svc.stats.entries_retained == len(SOURCES)

    def test_retained_answers_meet_contract_vs_exact_solve(self):
        accuracy = AccuracyParams.paper_defaults(120)
        with make_engine(broadcaster_graph(), accuracy=accuracy) as svc:
            svc.query_batch(SOURCES)
            svc.add_edge(BROADCASTER, CYCLE[-1])
            assert svc.stats.extras["last_mutation"]["retained"] > 0
            for source in SOURCES:
                hits = svc.stats.cache_hits
                result = svc.query(source)
                assert svc.stats.cache_hits == hits + 1  # served stale-but-bounded
                exact = power_iteration(svc.graph, source,
                                        tol=1e-12).estimates
                assert_contract(result, exact, accuracy)

    def test_retention_meta_drifts_and_entries_eventually_evict(self):
        with make_engine(broadcaster_graph()) as svc:
            svc.query_batch(SOURCES)
            key = (SOURCES[0], svc._accuracy)
            before = svc._cache.get_meta(key)
            svc.add_edge(BROADCASTER, CYCLE[-1])
            after = svc._cache.get_meta(key)
            assert after.eps_bound > before.eps_bound
            assert after.eps_bound <= after.eps_contract
            # Keep toggling the broadcaster edge; the drift bound is
            # monotone, so the entry must be evicted within the budget.
            edits = 0
            while svc._cache.get_meta(key) is not None:
                present = edits % 2 == 0
                if present:
                    svc.remove_edge(BROADCASTER, CYCLE[-1])
                else:
                    svc.add_edge(BROADCASTER, CYCLE[-1])
                edits += 1
                assert edits < 100, "entry never evicted"

    def test_high_impact_edit_evicts_and_repairs_in_background(self):
        with make_engine(broadcaster_graph()) as svc:
            svc.query_batch(SOURCES)
            # Degree 1 -> 2 on a cycle node: L1 row change 1.0 under
            # real score mass -- every cached entry's budget blows.
            assert svc.add_edge(CYCLE[2], BROADCASTER)
            last = svc.stats.extras["last_mutation"]
            assert last["incremental"] is True
            assert last["retained"] == 0
            assert last["evicted"] == len(SOURCES)
            wait_for_repairs(svc, len(SOURCES))
            # Repairs landed in the cache: reads hit without solving.
            misses = svc.stats.cache_misses
            for source in SOURCES:
                svc.query(source)
            assert svc.stats.cache_misses == misses

    def test_repaired_entries_match_fresh_engine_exactly(self):
        with make_engine(broadcaster_graph()) as svc:
            svc.query_batch(SOURCES)
            svc.add_edge(CYCLE[2], BROADCASTER)
            wait_for_repairs(svc, len(SOURCES))
            with make_engine(svc.graph) as fresh:
                for source in SOURCES:
                    repaired = svc.query(source)
                    expected = fresh.query(source)
                    np.testing.assert_array_equal(repaired.estimates,
                                                  expected.estimates)

    def test_node_growth_falls_back_to_full_invalidation(self):
        graph = broadcaster_graph()
        with make_engine(graph) as svc:
            svc.query_batch(SOURCES)
            assert svc.add_edge(CYCLE[0], graph.n)  # new node id
            last = svc.stats.extras["last_mutation"]
            assert last["incremental"] is False
            assert last["retained"] == 0
            assert svc.graph.n == graph.n + 1
            grown = svc.query(graph.n)  # the new node is queryable
            assert grown.estimates.shape == (graph.n + 1,)

    def test_remove_node_falls_back_to_full_invalidation(self):
        with make_engine(broadcaster_graph()) as svc:
            svc.query_batch(SOURCES)
            assert svc.remove_node(BROADCASTER)
            last = svc.stats.extras["last_mutation"]
            assert last["incremental"] is False
            assert svc.stats.entries_retained == 0

    def test_non_incremental_engine_retains_nothing(self):
        graph = broadcaster_graph()
        accuracy = AccuracyParams.paper_defaults(graph.n)
        with ConcurrentQueryEngine(graph, accuracy=accuracy,
                                   max_workers=2) as svc:
            svc.query_batch(SOURCES)
            svc.add_edge(BROADCASTER, CYCLE[-1])
            last = svc.stats.extras["last_mutation"]
            assert last["incremental"] is False
            assert svc.stats.entries_retained == 0
            assert svc.stats.invalidations == len(SOURCES)

    def test_topk_entries_never_retained(self):
        with make_engine(broadcaster_graph()) as svc:
            svc.top_k(SOURCES[0], 3)
            svc.query(SOURCES[1])
            svc.add_edge(BROADCASTER, CYCLE[-1])
            last = svc.stats.extras["last_mutation"]
            # The full query survives; the top-k answer (no estimate
            # vector to bound) is evicted and repaired.
            assert last["retained"] == 1
            assert last["retained_sources"] == [SOURCES[1]]
            wait_for_repairs(svc, 1)


class TestSolveMargin:
    def test_margin_resolution_and_validation(self):
        graph = generators.preferential_attachment(60, 2, seed=3)
        with ConcurrentQueryEngine(graph) as svc:
            assert svc._solve_margin == 1.0
        with ConcurrentQueryEngine(graph, incremental=True) as svc:
            assert svc._solve_margin == 0.5
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            ConcurrentQueryEngine(graph, solve_margin=0.0)
        with pytest.raises(ParameterError):
            ConcurrentQueryEngine(graph, solve_margin=1.5)

    def test_margin_one_is_byte_identical_to_plain_engine(self):
        graph = generators.preferential_attachment(60, 2, seed=3)
        accuracy = AccuracyParams.paper_defaults(graph.n)
        with ConcurrentQueryEngine(graph, accuracy=accuracy,
                                   seed=0) as plain, \
                ConcurrentQueryEngine(graph, accuracy=accuracy, seed=0,
                                      incremental=True,
                                      solve_margin=1.0) as inc:
            for source in (0, 7, 19):
                np.testing.assert_array_equal(
                    plain.query(source).estimates,
                    inc.query(source).estimates,
                )

    def test_tightened_solve_meets_tighter_eps(self):
        graph = broadcaster_graph()
        accuracy = AccuracyParams.paper_defaults(graph.n)
        with make_engine(graph, accuracy=accuracy,
                         solve_margin=0.5) as svc:
            result = svc.query(SOURCES[0])
            exact = power_iteration(graph, SOURCES[0], tol=1e-12).estimates
            assert_contract(result, exact,
                            accuracy.with_eps(accuracy.eps * 0.5))


class TestRetentionMath:
    def test_row_change_norm(self):
        assert retention.row_change_norm(5, 5, "absorb") == 0.0
        assert retention.row_change_norm(1, 2, "absorb") == 1.0
        assert retention.row_change_norm(99, 100, "absorb") == (
            pytest.approx(2.0 / 100.0))
        assert retention.row_change_norm(0, 1, "absorb") == 1.0
        assert retention.row_change_norm(1, 0, "restart") == 2.0

    def test_row_deltas_compose_stepwise(self):
        graph = from_edges(4, [(0, 1), (0, 2), (3, 0)])
        deltas = retention.row_deltas(
            graph, [("add", 0, 3), ("remove", 0, 1), ("add", 3, 1)])
        assert deltas == [(0, 2, 3), (0, 3, 2), (3, 1, 2)]

    def test_drifted_eps_unbounded_returns_none(self):
        meta = retention.RetentionMeta(eps_bound=0.9, eps_contract=0.95,
                                       delta=0.01, alpha=0.2)
        estimates = np.full(4, 0.25)
        assert retention.drifted_eps(meta, estimates, [(0, 1, 2)],
                                     "absorb") is None

    def test_survives_respects_contract_boundary(self):
        meta = retention.RetentionMeta(eps_bound=0.25, eps_contract=0.5,
                                       delta=0.01, alpha=0.2)
        estimates = np.zeros(4)  # pi_upper collapses to delta
        small = [(0, 100, 101)]  # rho ~ 0.02 -> drift ~ 0.1
        kept = retention.survives(meta, estimates, small, "absorb")
        assert kept is not None
        assert kept.eps_bound > meta.eps_bound
        assert kept.slack < meta.slack
        big = [(0, 1, 2)]  # rho = 1 -> drift ~ 5, way past the contract
        assert retention.survives(meta, estimates, big, "absorb") is None


class TestCachePerEntryInvalidation:
    def test_invalidate_where_partial_retention(self):
        cache = SingleFlightCache(max_size=8)
        for key in ("a", "b", "c"):
            cache.get_or_compute(key, lambda k=key: k.upper(),
                                 meta=lambda value: {"tag": value})
        retained, evicted = cache.invalidate_where(
            lambda key, value, meta: ({"tag": value, "bumped": True}
                                      if key != "b" else None))
        assert retained == ["a", "c"]
        assert evicted == ["b"]
        assert len(cache) == 2
        assert cache.get_meta("a") == {"tag": "A", "bumped": True}
        assert cache.get_meta("b") is None
        assert cache.get_or_compute("a", lambda: "recomputed")[1] == "hit"

    def test_invalidate_where_hands_none_meta_through(self):
        cache = SingleFlightCache(max_size=8)
        cache.get_or_compute("bare", lambda: 1)  # stored without meta
        seen = {}
        cache.invalidate_where(
            lambda key, value, meta: seen.setdefault(key, meta))
        assert seen == {"bare": None}

    def test_invalidate_where_fences_in_flight_stores(self):
        cache = SingleFlightCache(max_size=8)
        computing = threading.Event()
        release = threading.Event()

        def slow():
            computing.set()
            assert release.wait(JOIN_TIMEOUT)
            return "stale"

        thread = threading.Thread(
            target=lambda: cache.get_or_compute("k", slow), daemon=True)
        thread.start()
        assert computing.wait(JOIN_TIMEOUT)
        generation = cache.generation
        cache.invalidate_where(lambda key, value, meta: meta)
        assert cache.generation == generation + 1
        release.set()
        thread.join(JOIN_TIMEOUT)
        assert "k" not in cache  # pre-mutation flight never published

    def test_meta_callback_failure_leaves_entry_unretainable(self):
        cache = SingleFlightCache(max_size=8)

        def broken_meta(value):
            raise ValueError("no meta for you")

        value, outcome = cache.get_or_compute("k", lambda: 42,
                                              meta=broken_meta)
        assert (value, outcome) == (42, "miss")
        assert cache.get_meta("k") is None  # cached, but cannot be retained


class TestDeadlineTraceStrip:
    def test_custom_solver_deadline_proxy_is_stripped(self):
        graph = generators.preferential_attachment(60, 2, seed=3)
        inner = QueryTrace()

        def solver(graph, source, accuracy, seed):
            return SimpleNamespace(
                estimates=np.zeros(graph.n),
                trace=DeadlineTrace(time.monotonic() + 60.0, inner),
            )

        with ConcurrentQueryEngine(graph, solver=solver) as svc:
            result = svc.query(5, deadline=time.monotonic() + 60.0)
            assert result.trace is inner  # unwrapped, not the proxy
            cached = svc.query(5)
            assert cached.trace is inner

    def test_custom_solver_null_proxy_strips_to_none(self):
        graph = generators.preferential_attachment(60, 2, seed=3)

        def solver(graph, source, accuracy, seed):
            return SimpleNamespace(
                estimates=np.zeros(graph.n),
                trace=DeadlineTrace(time.monotonic() + 60.0),
            )

        with ConcurrentQueryEngine(graph, solver=solver) as svc:
            assert svc.query(5).trace is None


class TestMetricsExposure:
    def test_retention_counters_rendered(self):
        from repro.server.metrics import ServerMetrics

        with make_engine(broadcaster_graph()) as svc:
            svc.query_batch(SOURCES)
            svc.add_edge(BROADCASTER, CYCLE[-1])
            page = ServerMetrics().render(engine=svc)
        retained_line = next(
            line for line in page.splitlines()
            if line.startswith("repro_engine_entries_retained_total"))
        assert float(retained_line.split()[-1]) == len(SOURCES)
        assert "repro_engine_entries_repaired_total" in page
