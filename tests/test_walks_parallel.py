"""Tests for the process-parallel walk executor (repro.walks.parallel).

The module-scoped ``pool`` fixture keeps one spawned worker pool alive
for the whole file -- pool startup is the expensive part, exactly as it
is for the serving engines that hold an executor per graph snapshot.
"""

import numpy as np
import pytest

from repro.core.params import AccuracyParams
from repro.core.resacc import resacc
from repro.errors import ParameterError
from repro.graph import generators
from repro.obs import QueryTrace
from repro.service import QueryEngine
from repro.walks import (
    ParallelWalkExecutor,
    SharedCSRGraph,
    residue_weighted_walks,
    walk_terminal_mass,
)

ALPHA = 0.2
WORKERS = 2


@pytest.fixture(scope="module")
def pgraph():
    return generators.preferential_attachment(300, 3, seed=7)


@pytest.fixture(scope="module")
def pool(pgraph):
    with ParallelWalkExecutor(pgraph, WORKERS) as executor:
        yield executor


@pytest.fixture
def residue(pgraph):
    vec = np.zeros(pgraph.n)
    vec[3] = 0.04
    vec[17] = 0.01
    vec[150] = 0.02
    return vec


def relaxed_accuracy(graph):
    return AccuracyParams.paper_defaults(graph.n, delta_scale=50.0)


class TestSharedCSRGraph:
    def test_handle_round_trip(self, pgraph):
        from repro.walks.parallel import _attach

        with SharedCSRGraph(pgraph) as shared:
            handle = shared.handle
            assert handle["n"] == pgraph.n
            assert handle["dangling"] == pgraph.dangling
            view = _attach(handle)
            assert np.array_equal(view.indptr, pgraph.indptr)
            assert np.array_equal(view.indices, pgraph.indices)
            assert np.array_equal(view.out_degrees, pgraph.out_degrees)
            # The view duck-types CSRGraph for the walk kernels: an
            # identical rng stream yields byte-identical terminal mass.
            starts = np.zeros(500, dtype=np.int64)
            a = walk_terminal_mass(pgraph, starts, ALPHA,
                                   np.random.default_rng(1))
            b = walk_terminal_mass(view, starts, ALPHA,
                                   np.random.default_rng(1))
            assert a.tobytes() == b.tobytes()

    def test_close_is_idempotent(self, pgraph):
        shared = SharedCSRGraph(pgraph)
        shared.close()
        shared.close()


class TestExecutorDeterminism:
    def test_fixed_seed_and_shards_byte_identical(self, pool, residue,
                                                  pgraph):
        runs = [
            residue_weighted_walks(pgraph, residue, 2_000, ALPHA, None,
                                   walk_seed=0, executor=pool)
            for _ in range(2)
        ]
        (mass_a, used_a), (mass_b, used_b) = runs
        assert mass_a.tobytes() == mass_b.tobytes()
        assert used_a == used_b

    def test_different_seed_diverges(self, pool, residue, pgraph):
        mass_a, _ = residue_weighted_walks(pgraph, residue, 2_000, ALPHA,
                                           None, walk_seed=0, executor=pool)
        mass_b, _ = residue_weighted_walks(pgraph, residue, 2_000, ALPHA,
                                           None, walk_seed=1, executor=pool)
        assert mass_a.tobytes() != mass_b.tobytes()

    def test_shard_count_changes_stream_not_mass_total(self, pool, residue,
                                                       pgraph):
        r_sum = residue.sum()
        masses = {}
        for shards in (1, 2, 3):
            mass, sizes = pool.run(
                np.repeat(np.flatnonzero(residue > 0), 1_000), ALPHA,
                weights=np.repeat(
                    residue[residue > 0] / 1_000, 1_000
                ),
                seed=0, n_shards=shards,
            )
            assert len(sizes) == shards
            assert sum(sizes) == 3_000
            # The terminal estimator deposits each walk's weight exactly
            # once, so total mass equals r_sum for every shard count.
            assert mass.sum() == pytest.approx(r_sum, abs=1e-12)
            masses[shards] = mass
        assert masses[1].tobytes() != masses[2].tobytes()

    def test_statistically_equivalent_to_exact(self, pool):
        from repro.baselines.inverse import ExactSolver

        g = generators.preferential_attachment(300, 3, seed=7)
        truth = ExactSolver(g, ALPHA).query(0).estimates
        starts = np.zeros(40_000, dtype=np.int64)
        mass, _ = pool.run(starts, ALPHA, seed=3)
        assert np.max(np.abs(mass / starts.size - truth)) < 0.02

    def test_empty_batch(self, pool):
        mass, sizes = pool.run(np.empty(0, dtype=np.int64), ALPHA, seed=0)
        assert mass.sum() == 0.0
        assert sum(sizes) == 0


class TestEngineIntegration:
    def test_serial_path_bit_for_bit_unchanged(self, pgraph, residue):
        # walk_workers=1 must consume rng exactly as the historical
        # serial sampler: same generator state, same bytes out.
        mass_a, used_a = residue_weighted_walks(
            pgraph, residue, 2_000, ALPHA, np.random.default_rng(0)
        )
        mass_b, used_b = residue_weighted_walks(
            pgraph, residue, 2_000, ALPHA, np.random.default_rng(0),
            walk_workers=1,
        )
        assert mass_a.tobytes() == mass_b.tobytes()
        assert used_a == used_b

    def test_parallel_requires_walk_seed(self, pgraph, residue):
        with pytest.raises(ParameterError):
            residue_weighted_walks(pgraph, residue, 100, ALPHA,
                                   np.random.default_rng(0), walk_workers=2)

    def test_trace_gets_per_shard_counters(self, pool, pgraph, residue):
        trace = QueryTrace()
        _, used = residue_weighted_walks(pgraph, residue, 2_000, ALPHA,
                                         None, walk_seed=0, executor=pool,
                                         trace=trace)
        totals = trace.counter_totals
        assert totals["walks"] == used
        assert totals["walk_shards"] == WORKERS
        assert sum(trace.meta["walk_shard_walks"]) == used


class TestResAccParallel:
    def test_repeated_runs_byte_identical(self, pool, pgraph):
        results = [
            resacc(pgraph, 0, accuracy=relaxed_accuracy(pgraph), seed=5,
                   walk_executor=pool)
            for _ in range(2)
        ]
        assert (results[0].estimates.tobytes()
                == results[1].estimates.tobytes())
        assert results[0].estimates.sum() == pytest.approx(1.0, abs=1e-9)

    def test_explicit_rng_rejected(self, pgraph):
        with pytest.raises(ParameterError):
            resacc(pgraph, 0, rng=np.random.default_rng(0), walk_workers=2)

    def test_trace_meta_records_walk_workers(self, pool, pgraph):
        trace = QueryTrace()
        result = resacc(pgraph, 0, accuracy=relaxed_accuracy(pgraph),
                        seed=5, walk_executor=pool, trace=trace)
        assert result.trace is trace
        assert trace.meta["walk_workers"] == WORKERS
        remedy_counters = trace.phase("remedy").counters
        assert remedy_counters["walk_shards"] == WORKERS


class TestServiceIntegration:
    def test_query_engine_deterministic_and_mutation_safe(self, pgraph):
        accuracy = relaxed_accuracy(pgraph)
        with QueryEngine(pgraph, accuracy=accuracy, seed=9,
                         walk_workers=WORKERS) as engine:
            first = engine.query(0)
            # Same (graph, source, accuracy, seed, walk_workers) in a
            # fresh engine: byte-identical answer.
            with QueryEngine(pgraph, accuracy=accuracy, seed=9,
                             walk_workers=WORKERS) as other:
                assert (first.estimates.tobytes()
                        == other.query(0).estimates.tobytes())
            # A mutation retires the walk pool with the old snapshot;
            # the next query re-shares the new graph and still works.
            assert engine.add_edge(0, pgraph.n - 1)
            after = engine.query(0)
            assert after.estimates.sum() == pytest.approx(1.0, abs=1e-9)

    def test_query_engine_rejects_bad_walk_workers(self, pgraph):
        with pytest.raises(ParameterError):
            QueryEngine(pgraph, walk_workers=0)

    def test_concurrent_engine_matches_sequential(self, pgraph):
        from repro.serving import ConcurrentQueryEngine

        accuracy = relaxed_accuracy(pgraph)
        sources = [0, 17, 42, 17]
        with QueryEngine(pgraph, accuracy=accuracy, seed=4,
                         walk_workers=WORKERS) as sequential:
            expected = [sequential.query(s).estimates.tobytes()
                        for s in sources]
        with ConcurrentQueryEngine(pgraph, accuracy=accuracy, seed=4,
                                   max_workers=2,
                                   walk_workers=WORKERS) as engine:
            results = engine.query_batch(sources)
        got = [r.estimates.tobytes() for r in results]
        assert got == expected
