"""Tests for the Monte-Carlo family: MC, FORA, FORA+, BiPPR, PF."""

import numpy as np
import pytest

from repro.baselines import (
    ForaPlusIndex,
    bippr_pair,
    bippr_ssrwr,
    expected_index_walks,
    fora,
    monte_carlo,
    particle_filtering,
)
from repro.core import AccuracyParams
from repro.errors import ParameterError
from repro.metrics.errors import guarantee_violation_rate

ALPHA = 0.2


class TestMonteCarlo:
    def test_sums_to_one(self, ba_graph, rng):
        result = monte_carlo(ba_graph, 0, num_walks=2_000, rng=rng)
        assert result.estimates.sum() == pytest.approx(1.0)

    def test_meets_contract(self, ba_graph, exact):
        accuracy = AccuracyParams.paper_defaults(ba_graph.n)
        truth = exact.query(3).estimates
        result = monte_carlo(ba_graph, 3, accuracy=accuracy, seed=1)
        assert guarantee_violation_rate(truth, result.estimates,
                                        accuracy) == 0.0

    def test_default_walk_count_is_contract_budget(self, ba_graph):
        accuracy = AccuracyParams.paper_defaults(ba_graph.n)
        result = monte_carlo(ba_graph, 0, accuracy=accuracy, seed=0)
        assert result.walks_used == int(np.ceil(accuracy.walk_constant))

    def test_validation(self, ba_graph):
        with pytest.raises(ParameterError):
            monte_carlo(ba_graph, 0, num_walks=0)
        with pytest.raises(ParameterError):
            monte_carlo(ba_graph, -1, num_walks=10)


class TestFora:
    def test_meets_contract(self, ba_graph, exact):
        accuracy = AccuracyParams.paper_defaults(ba_graph.n)
        truth = exact.query(9).estimates
        result = fora(ba_graph, 9, accuracy=accuracy, seed=2)
        assert guarantee_violation_rate(truth, result.estimates,
                                        accuracy) == 0.0

    def test_uses_fewer_walks_than_mc(self, ba_graph):
        accuracy = AccuracyParams.paper_defaults(ba_graph.n)
        f = fora(ba_graph, 0, accuracy=accuracy, seed=1)
        mc_walks = int(np.ceil(accuracy.walk_constant))
        assert f.walks_used < mc_walks
        assert f.extras["r_sum"] < 1.0

    def test_phase_times(self, ba_graph):
        result = fora(ba_graph, 0, seed=1)
        assert set(result.phase_seconds) == {"push", "walks"}

    def test_time_cap_reduces_walks(self, ba_graph):
        accuracy = AccuracyParams.paper_defaults(ba_graph.n)
        full = fora(ba_graph, 0, accuracy=accuracy, seed=1)
        capped = fora(ba_graph, 0, accuracy=accuracy, seed=1,
                      max_seconds=0.0)
        assert capped.walks_used <= full.walks_used
        assert capped.estimates.sum() <= full.estimates.sum() + 1e-9

    def test_explicit_r_max(self, ba_graph):
        result = fora(ba_graph, 0, r_max=1e-3, seed=1)
        assert result.extras["r_max"] == 1e-3


class TestForaPlus:
    def test_index_query_meets_contract(self, ba_graph, exact):
        accuracy = AccuracyParams.paper_defaults(ba_graph.n)
        index = ForaPlusIndex(ba_graph, accuracy=accuracy, seed=3)
        truth = exact.query(6).estimates
        result = index.query(6)
        assert guarantee_violation_rate(truth, result.estimates,
                                        accuracy) == 0.0

    def test_preprocess_and_size_reported(self, ba_graph):
        index = ForaPlusIndex(ba_graph, seed=0)
        assert index.preprocess_seconds > 0
        assert index.index_bytes > ba_graph.n * 8

    def test_expected_walks_matches_index(self, ba_graph):
        accuracy = AccuracyParams.paper_defaults(ba_graph.n)
        index = ForaPlusIndex(ba_graph, accuracy=accuracy, seed=0)
        expected = expected_index_walks(ba_graph, accuracy,
                                        r_max=index.r_max)
        assert index._endpoints.shape[0] == expected

    def test_capped_index_reports_shortfall(self, ba_graph):
        accuracy = AccuracyParams.paper_defaults(ba_graph.n)
        index = ForaPlusIndex(ba_graph, accuracy=accuracy,
                              max_walks_per_node=1, seed=0)
        result = index.query(0)
        assert result.extras["endpoint_shortfall"] > 0

    def test_source_validation(self, ba_graph):
        index = ForaPlusIndex(ba_graph, seed=0)
        with pytest.raises(ParameterError):
            index.query(-1)


class TestBiPPR:
    def test_pair_estimate_close_to_truth(self, ba_graph, exact):
        truth = exact.query(0).estimates
        target = int(np.argmax(truth[1:])) + 1
        estimate = bippr_pair(ba_graph, 0, target, r_max_b=1e-5,
                              num_walks=4_000, seed=1)
        assert estimate == pytest.approx(truth[target], abs=0.01)

    def test_ssrwr_adaptation(self, exact, ba_graph):
        truth = exact.query(0).estimates
        result = bippr_ssrwr(ba_graph, 0, r_max_b=1e-4, num_walks=2_000,
                             seed=1, targets=range(20))
        assert np.abs(result.estimates[:20] - truth[:20]).max() < 0.05

    def test_validation(self, ba_graph):
        with pytest.raises(ParameterError):
            bippr_pair(ba_graph, 0, 10_000)
        with pytest.raises(ParameterError):
            bippr_ssrwr(ba_graph, -1)


class TestParticleFiltering:
    def test_estimates_near_truth_with_small_wmin(self, ba_graph, exact):
        truth = exact.query(0).estimates
        result = particle_filtering(ba_graph, 0, 50_000, w_min=1.0, seed=1)
        assert np.abs(result.estimates - truth).max() < 0.02

    def test_larger_wmin_larger_error(self, ba_graph, exact):
        truth = exact.query(0).estimates
        small = particle_filtering(ba_graph, 0, 20_000, w_min=1.0, seed=1)
        large = particle_filtering(ba_graph, 0, 20_000, w_min=2_000.0,
                                   seed=1)
        err_small = np.abs(small.estimates - truth).sum()
        err_large = np.abs(large.estimates - truth).sum()
        assert err_large > err_small

    def test_dropped_mass_reported(self, ba_graph):
        result = particle_filtering(ba_graph, 0, 1_000, w_min=200.0, seed=1)
        assert 0.0 <= result.extras["dropped_mass"] <= 1.0
        assert result.estimates.sum() <= 1.0 + 1e-9

    def test_validation(self, ba_graph):
        with pytest.raises(ParameterError):
            particle_filtering(ba_graph, 0, 0)
        with pytest.raises(ParameterError):
            particle_filtering(ba_graph, 0, 10, w_min=0.0)
