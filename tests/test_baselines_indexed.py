"""Tests for the index-oriented baselines (TPA, BePI) and TopPPR/Backward."""

import numpy as np
import pytest

from repro.baselines import (
    BePIIndex,
    TPAIndex,
    backward_contributions,
    ssrwr_via_backward,
    topppr,
)
from repro.core import AccuracyParams
from repro.graph import generators
from repro.errors import ParameterError
from repro.metrics.ranking import ndcg_at_k

ALPHA = 0.2


class TestTPA:
    def test_pagerank_index(self, ba_graph):
        index = TPAIndex(ba_graph, alpha=ALPHA)
        assert index.pagerank.sum() == pytest.approx(1.0)
        assert index.preprocess_seconds > 0
        assert index.index_bytes == ba_graph.n * 8

    def test_query_additive_error_shrinks_with_iterations(self, ba_graph,
                                                          exact):
        truth = exact.query(0).estimates
        index = TPAIndex(ba_graph, alpha=ALPHA)
        coarse = index.query(0, local_iterations=2).estimates
        fine = index.query(0, local_iterations=30).estimates
        assert np.abs(fine - truth).sum() < np.abs(coarse - truth).sum()

    def test_tail_mass_matches_geometric_decay(self, ba_graph):
        index = TPAIndex(ba_graph, alpha=ALPHA)
        result = index.query(0, local_iterations=5)
        assert result.extras["tail_mass"] == pytest.approx(
            (1 - ALPHA) ** 5, abs=1e-9)

    def test_estimates_still_sum_to_one(self, ba_graph):
        index = TPAIndex(ba_graph, alpha=ALPHA)
        result = index.query(0, local_iterations=4)
        assert result.estimates.sum() == pytest.approx(1.0, abs=1e-9)

    def test_validation(self, ba_graph):
        index = TPAIndex(ba_graph, alpha=ALPHA)
        with pytest.raises(ParameterError):
            index.query(10_000)
        with pytest.raises(ParameterError):
            index.query(0, local_iterations=-1)


class TestBePI:
    def test_query_accurate_with_refinement(self, ba_graph, exact):
        truth = exact.query(0).estimates
        index = BePIIndex(ba_graph, alpha=ALPHA, refine_steps=4)
        result = index.query(0)
        # BePI is approximate by design (incomplete LU); refinement brings
        # it within a small additive error, not machine precision.
        assert np.abs(result.estimates - truth).max() < 1e-5

    def test_refinement_improves_raw_solve(self, ba_graph, exact):
        truth = exact.query(5).estimates
        raw = BePIIndex(ba_graph, alpha=ALPHA, refine_steps=0,
                        drop_tol=1e-2).query(5).estimates
        refined = BePIIndex(ba_graph, alpha=ALPHA, refine_steps=2,
                            drop_tol=1e-2).query(5).estimates
        assert np.abs(refined - truth).max() <= np.abs(raw - truth).max()

    def test_index_metadata(self, ba_graph):
        index = BePIIndex(ba_graph, alpha=ALPHA)
        assert index.preprocess_seconds > 0
        assert index.index_bytes > 0
        assert 0 < index.num_hubs < ba_graph.n

    def test_zero_hubs(self, tiny_graph):
        index = BePIIndex(tiny_graph, alpha=ALPHA, hub_ratio=0.0)
        result = index.query(0)
        assert result.estimates.sum() == pytest.approx(1.0, abs=1e-6)

    def test_restart_policy_rejected(self, tiny_graph):
        with pytest.raises(ParameterError):
            BePIIndex(tiny_graph.with_dangling("restart"))

    def test_validation(self, ba_graph):
        with pytest.raises(ParameterError):
            BePIIndex(ba_graph, hub_ratio=1.5)
        index = BePIIndex(ba_graph)
        with pytest.raises(ParameterError):
            index.query(-3)


class TestTopPPR:
    def test_orders_top_nodes(self, ba_graph, exact):
        truth = exact.query(0).estimates
        accuracy = AccuracyParams.paper_defaults(ba_graph.n)
        result = topppr(ba_graph, 0, k=20, accuracy=accuracy, seed=1)
        assert ndcg_at_k(truth, result.estimates, 20) > 0.95

    def test_refinement_improves_candidates(self, ba_graph, exact):
        truth = exact.query(0).estimates
        accuracy = AccuracyParams.paper_defaults(ba_graph.n)
        refined = topppr(ba_graph, 0, k=10, accuracy=accuracy, seed=1,
                         r_max_b=1e-6)
        top_true = np.argsort(-truth)[:5]
        gaps = np.abs(refined.estimates[top_true] - truth[top_true])
        assert gaps.max() < 5e-3

    def test_candidate_cap(self, ba_graph):
        accuracy = AccuracyParams.paper_defaults(ba_graph.n)
        result = topppr(ba_graph, 0, k=1_000_000, accuracy=accuracy,
                        seed=1, max_candidates=10)
        assert result.extras["candidates"] == 10
        assert result.extras["k"] == ba_graph.n

    def test_phase_times(self, ba_graph):
        result = topppr(ba_graph, 0, k=10, seed=1)
        assert set(result.phase_seconds) == {"push", "walks", "backward"}

    def test_validation(self, ba_graph):
        with pytest.raises(ParameterError):
            topppr(ba_graph, 0, k=0)
        with pytest.raises(ParameterError):
            topppr(ba_graph, -1, k=5)


class TestBackwardSearch:
    def test_contributions_vector(self, ba_graph, exact):
        target = 12
        reserve, residue, _ = backward_contributions(ba_graph, target,
                                                     r_max_b=1e-9)
        truth_col = np.array([
            exact.query(s).estimates[target] for s in range(0, 60, 7)
        ])
        approx_col = reserve[np.arange(0, 60, 7)]
        assert np.abs(approx_col - truth_col).max() < 1e-6

    def test_ssrwr_adaptation_on_small_graph(self, exact):
        g = generators.preferential_attachment(50, 2, seed=4)
        from repro.baselines.inverse import ExactSolver

        truth = ExactSolver(g, ALPHA).query(0).estimates
        result = ssrwr_via_backward(g, 0, r_max_b=1e-8)
        assert np.abs(result.estimates - truth).max() < 1e-5

    def test_targets_subset(self, ba_graph):
        result = ssrwr_via_backward(ba_graph, 0, r_max_b=1e-4,
                                    targets=[1, 2, 3])
        assert result.estimates[10:].sum() == 0.0
