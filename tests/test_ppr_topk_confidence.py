"""Tests for the PPR extension, top-K queries, and confidence helpers."""

import numpy as np
import pytest

from repro.analysis import (
    achievable_eps,
    achievable_p_f,
    failure_probability,
    required_walks,
    walk_savings_factor,
)
from repro.core import (
    AccuracyParams,
    exact_ppr,
    normalize_preference,
    personalized_pagerank,
    resacc,
    topk_ssrwr,
)
from repro.errors import ParameterError

ALPHA = 0.2


class TestNormalizePreference:
    def test_node_list_uniform(self, ba_graph):
        vector = normalize_preference(ba_graph, [0, 5, 5])
        assert vector.sum() == pytest.approx(1.0)
        assert vector[5] == pytest.approx(2 / 3)
        assert vector[0] == pytest.approx(1 / 3)

    def test_dict_weights(self, ba_graph):
        vector = normalize_preference(ba_graph, {1: 3.0, 2: 1.0})
        assert vector[1] == pytest.approx(0.75)
        assert vector[2] == pytest.approx(0.25)

    def test_dense_vector_normalized(self, ba_graph):
        raw = np.zeros(ba_graph.n)
        raw[:4] = 2.0
        vector = normalize_preference(ba_graph, raw)
        assert vector.sum() == pytest.approx(1.0)

    def test_validation(self, ba_graph):
        with pytest.raises(ParameterError):
            normalize_preference(ba_graph, [ba_graph.n + 5])
        with pytest.raises(ParameterError):
            normalize_preference(ba_graph, {0: -1.0})
        with pytest.raises(ParameterError):
            normalize_preference(ba_graph, np.zeros(ba_graph.n))


class TestPersonalizedPageRank:
    def test_point_mass_matches_ssrwr(self, ba_graph, exact):
        truth = exact.query(3).estimates
        accuracy = AccuracyParams.paper_defaults(ba_graph.n)
        result = personalized_pagerank(ba_graph, [3], accuracy=accuracy,
                                       seed=1)
        sig = truth > accuracy.delta
        rel = np.abs(result.estimates - truth)[sig] / truth[sig]
        assert rel.max() <= accuracy.eps

    def test_linearity_against_exact(self, ba_graph, exact):
        pref = {2: 0.5, 9: 0.5}
        expected = 0.5 * exact.query(2).estimates \
            + 0.5 * exact.query(9).estimates
        truth = exact_ppr(ba_graph, pref, alpha=ALPHA)
        assert np.max(np.abs(truth - expected)) < 1e-10

    def test_approximate_matches_exact_ppr(self, ba_graph):
        pref = {0: 0.25, 7: 0.75}
        truth = exact_ppr(ba_graph, pref, alpha=ALPHA)
        accuracy = AccuracyParams.paper_defaults(ba_graph.n)
        result = personalized_pagerank(ba_graph, pref, accuracy=accuracy,
                                       seed=2)
        sig = truth > accuracy.delta
        rel = np.abs(result.estimates - truth)[sig] / truth[sig]
        assert rel.max() <= accuracy.eps
        assert result.estimates.sum() == pytest.approx(1.0, abs=1e-9)

    def test_extras(self, ba_graph):
        result = personalized_pagerank(ba_graph, [0, 1, 2], seed=0)
        assert result.extras["support"] == 3
        assert result.algorithm == "ppr"

    def test_restart_policy_rejected(self, ba_graph):
        g = ba_graph.with_dangling("restart")
        with pytest.raises(ParameterError):
            personalized_pagerank(g, [0])
        with pytest.raises(ParameterError):
            exact_ppr(g, [0])

    def test_exact_ppr_with_dangling_nodes(self, web_graph):
        pref = [1, 2]
        truth = exact_ppr(web_graph, pref, alpha=ALPHA)
        assert truth.sum() == pytest.approx(1.0, abs=1e-10)


class TestTopK:
    def test_returns_sorted_topk(self, ba_graph):
        top = topk_ssrwr(ba_graph, 0, 10, seed=1)
        assert top.k == 10
        assert np.all(np.diff(top.values) <= 0)
        assert top.result.algorithm == "resacc"

    def test_matches_truth_head(self, ba_graph, exact):
        truth = exact.query(0).estimates
        accuracy = AccuracyParams.paper_defaults(ba_graph.n)
        top = topk_ssrwr(ba_graph, 0, 5, accuracy=accuracy, seed=2)
        true_top = set(np.argsort(-truth)[:5].tolist())
        assert len(set(top.nodes.tolist()) & true_top) >= 4

    def test_separation_margin_definition(self, ba_graph):
        top = topk_ssrwr(ba_graph, 0, 3, eps=0.0, seed=1)
        estimates = top.result.estimates
        order = np.argsort(-estimates)
        expected = estimates[order[2]] / estimates[order[3]]
        assert top.separation_margin == pytest.approx(expected)
        assert top.certified == (top.separation_margin > 1.0)

    def test_k_larger_than_n(self, ba_graph):
        top = topk_ssrwr(ba_graph, 0, ba_graph.n + 50, seed=1)
        assert top.k == ba_graph.n
        assert top.separation_margin == float("inf")

    def test_custom_solver(self, ba_graph):
        from repro.baselines import fora

        top = topk_ssrwr(ba_graph, 0, 5, solver=fora, seed=3)
        assert top.result.algorithm == "fora"

    def test_validation(self, ba_graph):
        with pytest.raises(ParameterError):
            topk_ssrwr(ba_graph, 0, 0)


class TestConfidence:
    def test_bound_decreasing_in_walks(self):
        probs = [failure_probability(0.01, 0.5, n, 0.1)
                 for n in (10, 100, 1_000, 10_000)]
        assert probs == sorted(probs, reverse=True)

    def test_required_walks_matches_accuracy_params(self):
        acc = AccuracyParams(eps=0.5, delta=0.01, p_f=0.01)
        assert required_walks(0.5, 0.01, 0.01, 0.3) == acc.num_walks(0.3)

    def test_theorem3_consistency(self):
        """With Theorem 3's budget the bound at pi = delta equals p_f."""
        eps, delta, p_f, r_sum = 0.5, 0.01, 0.001, 0.2
        n_r = required_walks(eps, delta, p_f, r_sum)
        assert achievable_p_f(eps, delta, n_r, r_sum) <= p_f + 1e-12

    def test_achievable_eps_inverts_bound(self):
        delta, p_f, r_sum = 0.01, 0.01, 0.2
        n_r = required_walks(0.5, delta, p_f, r_sum)
        eps = achievable_eps(delta, p_f, n_r, r_sum)
        assert eps == pytest.approx(0.5, rel=0.02)

    def test_achievable_eps_zero_rsum(self):
        assert achievable_eps(0.01, 0.01, 0, 0.0) == 0.0

    def test_achievable_eps_unreachable(self):
        assert achievable_eps(1e-9, 1e-9, 1, 1.0) == float("inf")

    def test_walk_savings_matches_measured(self, ba_graph):
        from repro.baselines import fora

        accuracy = AccuracyParams.paper_defaults(ba_graph.n)
        res = resacc(ba_graph, 0, accuracy=accuracy, seed=1)
        frs = fora(ba_graph, 0, accuracy=accuracy, seed=1)
        factor = walk_savings_factor(res.extras["r_sum"],
                                     frs.extras["r_sum"])
        measured = frs.walks_used / res.walks_used
        assert factor == pytest.approx(measured, rel=0.25)

    def test_validation(self):
        with pytest.raises(ParameterError):
            failure_probability(0.0, 0.5, 10, 0.1)
        with pytest.raises(ParameterError):
            required_walks(0.5, 0.01, 0.01, -1.0)
        with pytest.raises(ParameterError):
            walk_savings_factor(-1.0, 1.0)
